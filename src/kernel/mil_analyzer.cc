// Static verification of MIL scripts (AnalyzeMilScript, declared in mil.h).
//
// The analyzer is a mirror of the interpreter in mil.cc over an abstract
// value domain: instead of BATs/doubles/strings it propagates static types
// (plus literal values and provable row counts where available) through the
// same LL(1) grammar, driven by the same MilLexer, in the same evaluation
// order. Because MIL is straight-line — no control flow — the abstract walk
// visits exactly the states the interpreter would, which gives the two key
// properties:
//
//  * soundness of rejection: every error reported here is an error the
//    interpreter would also have raised (same message, same StatusCode),
//    except that the analyzer raises it before ANY operator has run;
//  * zero false rejections: whenever a type or value is not statically
//    known (kAny), every check involving it passes.
//
// The one assumption is single-writer catalog access during a script: a
// bat('x') name resolved at analysis time is assumed to still resolve the
// same way moments later at execution time.

#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/diag.h"
#include "base/strings.h"
#include "kernel/mil.h"
#include "kernel/mil_lexer.h"
#include "kernel/persist.h"

namespace cobra::kernel {
namespace {

constexpr int kMaxExprDepth = 200;  // keep in sync with mil.cc

/// Static approximation of a MilValue.
struct SType {
  enum class Kind { kNumber, kString, kBat, kAny };
  Kind kind = Kind::kAny;

  // kBat: tail type and row count when provable.
  bool tail_known = false;
  TailType tail = TailType::kInt;
  bool rows_known = false;
  size_t rows = 0;
  /// Catalog name this BAT is a snapshot of (set by bat('x')); used for the
  /// stale-snapshot hazard when persist('x', ...) later replaces the BAT.
  std::string snapshot_of;

  // kNumber / kString: literal value when statically known.
  bool value_known = false;
  double number = 0.0;
  std::string str;

  static SType Any() { return SType{}; }
  static SType Num() {
    SType t;
    t.kind = Kind::kNumber;
    return t;
  }
  static SType NumVal(double v) {
    SType t = Num();
    t.value_known = true;
    t.number = v;
    return t;
  }
  static SType Str() {
    SType t;
    t.kind = Kind::kString;
    return t;
  }
  static SType StrVal(std::string s) {
    SType t = Str();
    t.value_known = true;
    t.str = std::move(s);
    return t;
  }
  static SType BatAny() {
    SType t;
    t.kind = Kind::kBat;
    return t;
  }
  static SType BatOf(TailType tail) {
    SType t = BatAny();
    t.tail_known = true;
    t.tail = tail;
    return t;
  }

  bool IsNumericTail() const {
    return tail == TailType::kInt || tail == TailType::kFloat;
  }
};

class MilAnalyzer {
 public:
  MilAnalyzer(const std::string& script, const MilAnalysisContext& ctx)
      : lexer_(script),
        ctx_(ctx),
        trace_ready_(ctx.trace_ready),
        shards_(ctx.shards) {
    SeedSessionVariables();
  }

  DiagnosticList Run() {
    for (;;) {
      MilToken tok;
      if (!Next(&tok)) break;
      if (tok.kind == MilToken::Kind::kEnd) break;
      if (tok.kind == MilToken::Kind::kSemi) continue;

      if (tok.kind == MilToken::Kind::kWord && tok.text == "VAR") {
        MilToken name;
        if (!Next(&name)) break;
        if (name.kind != MilToken::Kind::kWord) {
          Error(name, "expected variable name after VAR");
          break;
        }
        MilToken assign;
        if (!Next(&assign)) break;
        if (assign.kind != MilToken::Kind::kAssign) {
          Error(assign, "expected ':=' after VAR " + name.text);
          break;
        }
        std::optional<SType> value = ParseExpr(0);
        if (!value) break;
        vars_.insert_or_assign(name.text, *value);
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord && tok.text == "PRINT") {
        if (!ParseExpr(0)) break;
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord && tok.text == "trace") {
        if (!AnalyzeTrace()) break;
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord && tok.text == "check") {
        // Strict-mode analysis of the quoted script happens at runtime; its
        // findings are output, not errors, so they do not invalidate the
        // enclosing script. Only the statement's own shape is checked here.
        MilToken arg;
        if (!Next(&arg)) break;
        if (arg.kind != MilToken::Kind::kString) {
          Error(arg, "check expects a quoted MIL script");
          break;
        }
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord &&
          (tok.text == "save" || tok.text == "load")) {
        if (!CheckNotSharded(tok)) break;
        if (!AnalyzeSaveLoad(tok)) break;
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord && tok.text == "checkpoint") {
        if (!CheckNotSharded(tok)) break;
        if (!ctx_.data_dir_attached) {
          Error(tok,
                "checkpoint requires an attached data directory; construct "
                "the session with one or set COBRA_DATA_DIR",
                StatusCode::kFailedPrecondition);
          break;
        }
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord) {
        MilToken after;
        if (!Next(&after)) break;
        if (after.kind == MilToken::Kind::kAssign) {
          if (vars_.count(tok.text) == 0) {
            Error(tok, "assignment to undeclared variable " + tok.text,
                  StatusCode::kNotFound);
            break;
          }
          std::optional<SType> value = ParseExpr(0);
          if (!value) break;
          vars_.insert_or_assign(tok.text, *value);
          continue;
        }
        PushBack(std::move(after));
      }
      PushBack(std::move(tok));
      if (!ParseExpr(0)) break;
    }
    return std::move(diags_);
  }

 private:
  // -- Token plumbing (mirrors mil.cc's pushback stack) --------------------

  bool Next(MilToken* tok) {
    if (!pushed_.empty()) {
      *tok = std::move(pushed_.back());
      pushed_.pop_back();
      cur_line_ = tok->line;
      cur_col_ = tok->col;
      return true;
    }
    Result<MilToken> next = lexer_.Next();
    if (!next.ok()) {
      diags_.Error(lexer_.token_line(), lexer_.token_col(),
                   next.status().message(), next.status().code());
      return false;
    }
    *tok = std::move(next).value();
    cur_line_ = tok->line;
    cur_col_ = tok->col;
    return true;
  }

  void PushBack(MilToken tok) { pushed_.push_back(std::move(tok)); }

  void Error(const MilToken& at, std::string message,
             StatusCode code = StatusCode::kInvalidArgument) {
    diags_.Error(at.line, at.col, std::move(message), code);
  }

  // -- Environment ---------------------------------------------------------

  void SeedSessionVariables() {
    if (ctx_.variables == nullptr) return;
    for (const auto& [name, value] : *ctx_.variables) {
      if (const double* d = std::get_if<double>(&value)) {
        vars_[name] = SType::NumVal(*d);
      } else if (const std::string* s = std::get_if<std::string>(&value)) {
        vars_[name] = SType::StrVal(*s);
      } else {
        const Bat& bat = std::get<Bat>(value);
        SType t = SType::BatOf(bat.tail_type());
        t.rows_known = true;
        t.rows = bat.size();
        vars_[name] = t;
      }
    }
  }

  /// Resolves a catalog BAT name through the in-script persist() overlay,
  /// then the real catalog. Returns false after recording a NotFound
  /// diagnostic; on success *tail is the tail type when known.
  bool LookupCatalog(const std::string& name, const MilToken& at,
                     std::optional<TailType>* tail) {
    auto overlay = overlay_.find(name);
    if (overlay != overlay_.end()) {
      *tail = overlay->second;
      return true;
    }
    // After a `load` the catalog the script will see is the recovered one,
    // not the one we can inspect — every lookup becomes fully conservative
    // (unknown tail, misses allowed), preserving zero false rejections.
    if (catalog_unknown_) {
      tail->reset();
      return true;
    }
    if (ctx_.catalog == nullptr) {
      tail->reset();
      return true;
    }
    Result<const Bat*> bat = ctx_.catalog->Get(name);
    if (!bat.ok()) {
      // A persist() whose target name was not statically known could have
      // created this binding by execution time — stay conservative then.
      if (overlay_wildcard_) {
        tail->reset();
        return true;
      }
      Error(at, bat.status().message(), bat.status().code());
      return false;
    }
    *tail = (*bat)->tail_type();
    return true;
  }

  // -- Statements ----------------------------------------------------------

  /// Storage statements are FailedPrecondition while the statically-known
  /// shard count exceeds 1 (mirroring the interpreter; see the shards(n)
  /// grammar notes in mil.h). A count set from a non-literal is unknown and
  /// passes conservatively — the zero-false-rejection contract.
  bool CheckNotSharded(const MilToken& stmt) {
    if (!shards_known_ || shards_ <= 1) return true;
    Error(stmt,
          StrFormat("%s illegal while the session is sharded (shards(%d) in "
                    "effect); storage is per-shard — reset with shards(1)",
                    stmt.text.c_str(), shards_),
          StatusCode::kFailedPrecondition);
    return false;
  }

  bool AnalyzeTrace() {
    MilToken mode;
    if (!Next(&mode)) return false;
    if (mode.kind != MilToken::Kind::kWord) {
      Error(mode, "trace expects on|off|dump|json");
      return false;
    }
    if (mode.text == "on") {
      trace_ready_ = true;
    } else if (mode.text == "off") {
      // The sink is kept, so a later dump/json stays legal.
    } else if (mode.text == "dump" || mode.text == "json") {
      if (!trace_ready_) {
        Error(mode, "trace has not been enabled; run 'trace on' first",
              StatusCode::kFailedPrecondition);
        return false;
      }
    } else {
      Error(mode, "trace expects on|off|dump|json, got '" + mode.text + "'");
      return false;
    }
    return true;
  }

  /// `save '<dir>'` / `load '<dir>'`. Mirrors the interpreter: load of a
  /// directory with no store is a NotFound (unless this script saved into
  /// it first, or no filesystem was provided to check against). After a
  /// load the inspectable catalog is stale, so lookups go conservative and
  /// pre-load BAT snapshots become stale-read hazards.
  bool AnalyzeSaveLoad(const MilToken& stmt) {
    MilToken arg;
    if (!Next(&arg)) return false;
    if (arg.kind != MilToken::Kind::kString) {
      Error(arg, stmt.text + " expects a quoted directory path");
      return false;
    }
    if (stmt.text == "save") {
      saved_dirs_.insert(arg.text);
      return true;
    }
    if (ctx_.fs != nullptr && saved_dirs_.count(arg.text) == 0 &&
        !PersistentStore::Exists(*ctx_.fs, arg.text)) {
      Error(arg, "no persistent store at " + arg.text, StatusCode::kNotFound);
      return false;
    }
    catalog_unknown_ = true;
    overlay_wildcard_ = true;
    reloaded_ = true;
    return true;
  }

  // -- Expressions ---------------------------------------------------------

  std::optional<SType> ParseExpr(int depth) {
    if (depth > kMaxExprDepth) {
      diags_.Error(cur_line_, cur_col_, "MIL expression nested too deeply");
      return std::nullopt;
    }
    MilToken tok;
    if (!Next(&tok)) return std::nullopt;
    if (tok.kind == MilToken::Kind::kNumber) return SType::NumVal(tok.number);
    if (tok.kind == MilToken::Kind::kString) return SType::StrVal(tok.text);
    if (tok.kind != MilToken::Kind::kWord) {
      Error(tok, "expected expression, got '" + tok.text + "'");
      return std::nullopt;
    }
    const MilToken name_tok = tok;
    const std::string name = tok.text;
    MilToken after;
    if (!Next(&after)) return std::nullopt;
    if (after.kind != MilToken::Kind::kLParen) {
      PushBack(std::move(after));
      auto it = vars_.find(name);
      if (it == vars_.end()) {
        Error(name_tok, "unknown MIL variable " + name, StatusCode::kNotFound);
        return std::nullopt;
      }
      const SType& value = it->second;
      if (!value.snapshot_of.empty() &&
          (persisted_.count(value.snapshot_of) != 0 || reloaded_)) {
        const std::string message =
            persisted_.count(value.snapshot_of) != 0
                ? "variable '" + name + "' reads a snapshot of BAT '" +
                      value.snapshot_of + "' taken before persist('" +
                      value.snapshot_of + "', ...) replaced it"
                : "variable '" + name + "' reads a snapshot of BAT '" +
                      value.snapshot_of +
                      "' taken before load replaced the catalog";
        if (ctx_.strict) {
          Error(name_tok, message, StatusCode::kFailedPrecondition);
          return std::nullopt;
        }
        diags_.Warning(name_tok.line, name_tok.col, message);
      }
      return value;
    }
    // Function call: parse comma-separated arguments.
    std::vector<SType> args;
    std::vector<MilToken> arg_toks;
    MilToken peek;
    if (!Next(&peek)) return std::nullopt;
    if (peek.kind != MilToken::Kind::kRParen) {
      PushBack(std::move(peek));
      for (;;) {
        MilToken first;
        if (!Next(&first)) return std::nullopt;
        arg_toks.push_back(first);
        PushBack(std::move(first));
        std::optional<SType> arg = ParseExpr(depth + 1);
        if (!arg) return std::nullopt;
        args.push_back(*arg);
        MilToken sep;
        if (!Next(&sep)) return std::nullopt;
        if (sep.kind == MilToken::Kind::kRParen) break;
        if (sep.kind != MilToken::Kind::kComma) {
          Error(sep, "expected ',' or ')' in call to " + name);
          return std::nullopt;
        }
      }
    }
    return CheckCall(name_tok, name, args, arg_toks);
  }

  std::optional<SType> CheckCall(const MilToken& name_tok,
                                 const std::string& name,
                                 const std::vector<SType>& args,
                                 const std::vector<MilToken>& arg_toks) {
    auto arity = [&](size_t n) -> bool {
      if (args.size() != n) {
        Error(name_tok, StrFormat("%s expects %zu arguments, got %zu",
                                  name.c_str(), n, args.size()));
        return false;
      }
      return true;
    };
    // Definitely-wrong checks only: kAny always passes.
    auto require_bat = [&](size_t i, const std::string& context) -> bool {
      if (args[i].kind == SType::Kind::kNumber ||
          args[i].kind == SType::Kind::kString) {
        Error(arg_toks[i], "expected a BAT for " + context);
        return false;
      }
      return true;
    };
    auto require_number = [&](size_t i, const std::string& context) -> bool {
      if (args[i].kind == SType::Kind::kString ||
          args[i].kind == SType::Kind::kBat) {
        Error(arg_toks[i], "expected a number for " + context);
        return false;
      }
      return true;
    };
    auto definitely_not_string = [&](size_t i) -> bool {
      return args[i].kind == SType::Kind::kNumber ||
             args[i].kind == SType::Kind::kBat;
    };

    if (name == "bat") {
      if (!arity(1)) return std::nullopt;
      if (definitely_not_string(0)) {
        Error(arg_toks[0], "bat() expects a name string");
        return std::nullopt;
      }
      SType out = SType::BatAny();
      if (args[0].value_known) {
        std::optional<TailType> tail;
        if (!LookupCatalog(args[0].str, arg_toks[0], &tail)) {
          return std::nullopt;
        }
        if (tail) {
          out.tail_known = true;
          out.tail = *tail;
        }
        out.snapshot_of = args[0].str;
      }
      return out;
    }
    if (name == "persist") {
      if (!arity(2)) return std::nullopt;
      if (definitely_not_string(0)) {
        Error(arg_toks[0], "persist() expects a name string");
        return std::nullopt;
      }
      if (!require_bat(1, "persist")) return std::nullopt;
      if (args[0].value_known) {
        overlay_[args[0].str] =
            args[1].tail_known ? std::optional<TailType>(args[1].tail)
                               : std::nullopt;
        persisted_.insert(args[0].str);
      } else {
        overlay_wildcard_ = true;
      }
      SType out = args[1];
      out.kind = SType::Kind::kBat;
      return out;
    }
    if (name == "new") {
      if (!arity(1)) return std::nullopt;
      if (definitely_not_string(0)) {
        Error(arg_toks[0], "new() expects a type string");
        return std::nullopt;
      }
      SType out = SType::BatAny();
      if (args[0].value_known) {
        const std::string& type = args[0].str;
        if (type == "int") {
          out = SType::BatOf(TailType::kInt);
        } else if (type == "dbl") {
          out = SType::BatOf(TailType::kFloat);
        } else if (type == "str") {
          out = SType::BatOf(TailType::kStr);
        } else if (type == "oid") {
          out = SType::BatOf(TailType::kOid);
        } else {
          Error(arg_toks[0], "unknown BAT type " + type);
          return std::nullopt;
        }
        out.rows_known = true;
        out.rows = 0;
      }
      return out;
    }
    if (name == "insert") {
      if (!arity(3)) return std::nullopt;
      if (!require_bat(0, "insert")) return std::nullopt;
      if (!require_number(1, "insert head")) return std::nullopt;
      if (args[0].tail_known) {
        if (args[0].tail == TailType::kStr) {
          if (args[2].kind == SType::Kind::kNumber ||
              args[2].kind == SType::Kind::kBat) {
            Error(arg_toks[2], "insert tail must be a string");
            return std::nullopt;
          }
        } else if (args[2].kind == SType::Kind::kString ||
                   args[2].kind == SType::Kind::kBat) {
          Error(arg_toks[2], "expected a number for insert tail");
          return std::nullopt;
        }
      }
      SType out = args[0];
      out.kind = SType::Kind::kBat;
      if (out.rows_known) ++out.rows;
      return out;
    }
    if (name == "select") {
      if (args.size() == 2) {
        if (!require_bat(0, "select")) return std::nullopt;
        if (definitely_not_string(1)) {
          Error(arg_toks[1], "two-argument select expects a string");
          return std::nullopt;
        }
        if (args[0].tail_known && args[0].tail != TailType::kStr) {
          Error(arg_toks[0], "SelectStr requires a str tail");
          return std::nullopt;
        }
        // On the success path the input tail was str, so the output is too.
        SType out = SType::BatOf(TailType::kStr);
        out.snapshot_of = args[0].snapshot_of;
        return out;
      }
      if (!arity(3)) return std::nullopt;
      if (!require_bat(0, "select")) return std::nullopt;
      if (!require_number(1, "select lo")) return std::nullopt;
      if (!require_number(2, "select hi")) return std::nullopt;
      if (args[0].tail_known && !args[0].IsNumericTail()) {
        Error(arg_toks[0], "SelectRange requires a numeric tail");
        return std::nullopt;
      }
      SType out = args[0].tail_known ? SType::BatOf(args[0].tail)
                                     : SType::BatAny();
      out.snapshot_of = args[0].snapshot_of;
      return out;
    }
    if (name == "threadcnt") {
      if (!arity(1)) return std::nullopt;
      if (!require_number(0, "threadcnt")) return std::nullopt;
      if (args[0].value_known) {
        const double n = args[0].number;
        if (n < 1.0 || n != std::floor(n) || n > 1024.0) {
          Error(arg_toks[0],
                StrFormat("threadcnt expects an integer in [1, 1024], got %g",
                          n));
          return std::nullopt;
        }
        return SType::NumVal(n);
      }
      return SType::Num();
    }
    if (name == "shards") {
      if (!arity(1)) return std::nullopt;
      if (!require_number(0, "shards")) return std::nullopt;
      if (args[0].value_known) {
        const double n = args[0].number;
        if (n < 1.0 || n != std::floor(n) || n > 64.0) {
          Error(arg_toks[0],
                StrFormat("shards expects an integer in [1, 64], got %g", n));
          return std::nullopt;
        }
        shards_known_ = true;
        shards_ = static_cast<int>(n);
        return SType::NumVal(n);
      }
      shards_known_ = false;
      return SType::Num();
    }
    if (name == "join" || name == "semijoin" || name == "diff") {
      if (!arity(2)) return std::nullopt;
      if (!require_bat(0, name)) return std::nullopt;
      if (!require_bat(1, name)) return std::nullopt;
      if (name == "join") {
        if (args[0].tail_known && args[0].tail != TailType::kOid) {
          Error(arg_toks[0], "Join needs an oid tail on the left BAT");
          return std::nullopt;
        }
        SType out = args[1].tail_known ? SType::BatOf(args[1].tail)
                                       : SType::BatAny();
        return out;
      }
      SType out = args[0].tail_known ? SType::BatOf(args[0].tail)
                                     : SType::BatAny();
      out.snapshot_of = args[0].snapshot_of;
      return out;
    }
    if (name == "concat") {
      if (!arity(2)) return std::nullopt;
      if (!require_bat(0, "concat")) return std::nullopt;
      if (!require_bat(1, "concat")) return std::nullopt;
      if (args[0].tail_known && args[1].tail_known &&
          args[0].tail != args[1].tail) {
        Error(name_tok, "concat requires matching tail types");
        return std::nullopt;
      }
      SType out;
      if (args[0].tail_known) {
        out = SType::BatOf(args[0].tail);
      } else if (args[1].tail_known) {
        out = SType::BatOf(args[1].tail);
      } else {
        out = SType::BatAny();
      }
      if (args[0].rows_known && args[1].rows_known) {
        out.rows_known = true;
        out.rows = args[0].rows + args[1].rows;
      }
      out.snapshot_of = args[0].snapshot_of;
      return out;
    }
    if (name == "info") {
      if (!arity(1)) return std::nullopt;
      if (args[0].kind == SType::Kind::kString) {
        if (args[0].value_known) {
          std::optional<TailType> tail;
          if (!LookupCatalog(args[0].str, arg_toks[0], &tail)) {
            return std::nullopt;
          }
        }
      } else if (args[0].kind == SType::Kind::kNumber) {
        Error(arg_toks[0], "expected a BAT for info");
        return std::nullopt;
      }
      return SType::Str();
    }
    if (name == "reverse" || name == "mirror") {
      if (!arity(1)) return std::nullopt;
      if (!require_bat(0, name)) return std::nullopt;
      if (name == "reverse" && args[0].tail_known &&
          args[0].tail != TailType::kOid) {
        Error(arg_toks[0], "Reverse requires an oid tail");
        return std::nullopt;
      }
      SType out = SType::BatOf(TailType::kOid);
      out.rows_known = args[0].rows_known;
      out.rows = args[0].rows;
      out.snapshot_of = args[0].snapshot_of;
      return out;
    }
    if (name == "slice") {
      if (!arity(3)) return std::nullopt;
      if (!require_bat(0, "slice")) return std::nullopt;
      if (!require_number(1, "slice begin")) return std::nullopt;
      if (!require_number(2, "slice end")) return std::nullopt;
      SType out = args[0].tail_known ? SType::BatOf(args[0].tail)
                                     : SType::BatAny();
      out.snapshot_of = args[0].snapshot_of;
      return out;
    }
    if (name == "sum" || name == "max" || name == "min" || name == "count") {
      if (!arity(1)) return std::nullopt;
      if (!require_bat(0, name)) return std::nullopt;
      if (name == "count") {
        if (args[0].rows_known) {
          return SType::NumVal(static_cast<double>(args[0].rows));
        }
        return SType::Num();
      }
      // Mirror the runtime check order: Min/ArgMax test emptiness before
      // the tail type (Max delegates to ArgMax, hence its messages).
      if (name != "sum" && args[0].rows_known && args[0].rows == 0) {
        Error(name_tok,
              name == "min" ? "Min of empty BAT" : "ArgMax of empty BAT",
              StatusCode::kFailedPrecondition);
        return std::nullopt;
      }
      if (args[0].tail_known && !args[0].IsNumericTail()) {
        if (name == "sum") {
          Error(arg_toks[0], "Sum requires a numeric tail");
        } else if (name == "min") {
          Error(arg_toks[0], "Min requires a numeric tail");
        } else {
          Error(arg_toks[0], "ArgMax requires a numeric tail");
        }
        return std::nullopt;
      }
      return SType::Num();
    }
    Error(name_tok, "unknown MIL function " + name);
    return std::nullopt;
  }

  MilLexer lexer_;
  const MilAnalysisContext& ctx_;
  DiagnosticList diags_;
  std::vector<MilToken> pushed_;
  int cur_line_ = 1;
  int cur_col_ = 1;

  std::map<std::string, SType> vars_;
  /// Names persist()ed by this script (shadowing the catalog), with their
  /// tail type when statically known.
  std::map<std::string, std::optional<TailType>> overlay_;
  /// True after a persist() whose target name was not statically known: any
  /// catalog-miss after that point may be satisfied at runtime.
  bool overlay_wildcard_ = false;
  std::set<std::string> persisted_;
  bool trace_ready_ = false;
  /// Statically-tracked shard count: seeded from the session, updated by
  /// shards(<literal>); a non-literal argument makes it unknown.
  bool shards_known_ = true;
  int shards_ = 1;
  /// Directories this script has saved into (a later `load` of one is
  /// known-good even if the directory does not exist yet at analysis time).
  std::set<std::string> saved_dirs_;
  /// True after a `load`: the catalog visible at analysis time no longer
  /// predicts execution time, so catalog lookups stop reporting misses.
  bool catalog_unknown_ = false;
  /// True after a `load`: pre-load bat() snapshots held in variables are
  /// stale-read hazards (errors in strict mode, warnings otherwise).
  bool reloaded_ = false;
};

}  // namespace

DiagnosticList AnalyzeMilScript(const std::string& script,
                                const MilAnalysisContext& context) {
  return MilAnalyzer(script, context).Run();
}

}  // namespace cobra::kernel
