#include "kernel/shard.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/strings.h"
#include "base/trace.h"

namespace cobra::kernel {

namespace {

/// Opens an exchange-layer span; no sink installed records nothing.
trace::SpanGuard ExchangeSpan(const ExecContext& ctx, const char* op) {
  return trace::SpanGuard(ctx.trace, ctx.trace_parent, op);
}

/// The per-shard execution context of a scatter: the caller's worker budget
/// divided across the shards (each shard's kernel call still morsel-splits
/// internally), spans nested under the scatter span.
ExecContext ShardContext(const ExecContext& ctx, size_t shards,
                         ::cobra::trace::Span* scatter) {
  ExecContext inner = ctx;
  inner.threadcnt =
      std::max(1, ctx.threadcnt / static_cast<int>(std::max<size_t>(1, shards)));
  inner.trace_parent = scatter;
  return inner;
}

/// Same NaN-skipping winner rules as the kernel aggregates (bat.cc): the
/// candidate replaces the best when strictly better, or when the best so
/// far is NaN and the candidate is not. Leftmost-winner selection under a
/// total preorder is associative, which is what lets the exchange combine
/// per-shard Min/Max/ArgMax results instead of per-morsel partials.
bool BetterMax(double v, double best) {
  return std::isnan(best) ? !std::isnan(v) : v > best;
}
bool BetterMin(double v, double best) {
  return std::isnan(best) ? !std::isnan(v) : v < best;
}

/// Shard visit order of a merge: shard order, or reversed under the
/// unsafe_unordered_merge test seam (a deterministic stand-in for a merge
/// that takes shard outputs in completion order).
std::vector<size_t> MergeOrder(size_t shards, const ExchangeOptions& opts) {
  std::vector<size_t> order(shards);
  for (size_t k = 0; k < shards; ++k) {
    order[k] = opts.unsafe_unordered_merge ? shards - 1 - k : k;
  }
  return order;
}

/// Concatenates per-shard operator outputs in merge order under an
/// `exchange.merge` span (dictionary codes remap through Bat::Concat).
Bat MergeParts(TailType type, std::vector<Bat>& parts, const ExecContext& ctx,
               const ExchangeOptions& opts) {
  trace::SpanGuard span = ExchangeSpan(ctx, "exchange.merge");
  size_t total = 0;
  for (const Bat& p : parts) total += p.size();
  span.RowsIn(total);
  Bat out(type);
  out.Reserve(total);
  for (size_t k : MergeOrder(parts.size(), opts)) out.Concat(parts[k]);
  span.RowsOut(out.size());
  return out;
}

/// Scatter phase of a row-producing operator: one kernel call per shard
/// slice, fanned out with ParallelForEach, outputs collected into per-shard
/// slots. `per_shard` returns the slice's output (or the op's error, which
/// the scatter re-reports; shards fail identically, so the first in shard
/// order is deterministic).
template <typename Fn>
Result<std::vector<Bat>> Scatter(const ShardedBat& sb, TailType out_type,
                                 const ExecContext& ctx, const char* detail,
                                 Fn per_shard) {
  trace::SpanGuard span = ExchangeSpan(ctx, "exchange.scatter");
  span.RowsIn(sb.rows());
  if (span.enabled()) {
    span.Detail(StrFormat("shards=%zu%s", sb.num_shards(), detail));
  }
  const size_t n = sb.num_shards();
  std::vector<Bat> parts(n, Bat(out_type));
  std::vector<Status> errs(n);
  const ExecContext inner = ShardContext(ctx, n, span.span());
  ParallelForEach(ctx, n, [&](size_t k) {
    Result<Bat> r = per_shard(k, *sb.slices[k], inner);
    if (r.ok()) {
      parts[k] = std::move(r).value();
    } else {
      errs[k] = r.status();
    }
  });
  for (const Status& e : errs) {
    if (!e.ok()) return e;
  }
  return parts;
}

}  // namespace

// -- Partitioning -----------------------------------------------------------

std::vector<ShardRange> ShardRanges(size_t rows, size_t shards, size_t align) {
  COBRA_CHECK(shards > 0);
  COBRA_CHECK(align > 0);
  const size_t blocks = rows == 0 ? 0 : (rows - 1) / align + 1;
  // blk < blocks implies blk * align < rows + align <= no overflow; a block
  // index at or past the end maps to `rows` without multiplying (align may
  // be huge — ExecContext::MorselRows() saturates morsel_rows == 0).
  const auto bound = [&](size_t blk) {
    return blk >= blocks ? rows : std::min(rows, blk * align);
  };
  std::vector<ShardRange> ranges(shards);
  for (size_t k = 0; k < shards; ++k) {
    ranges[k].begin = bound(k * blocks / shards);
    ranges[k].end = bound((k + 1) * blocks / shards);
  }
  return ranges;
}

size_t ShardedBat::rows() const {
  size_t total = 0;
  for (const Bat* s : slices) total += s->size();
  return total;
}

bool ShardedBat::AlignedTo(size_t quantum) const {
  if (quantum == 0) return false;
  for (size_t off : offsets) {
    if (off % quantum != 0) return false;
  }
  return true;
}

PartitionedBat::PartitionedBat(const Bat& bat, size_t shards, size_t align)
    : tail_type_(bat.tail_type()) {
  const std::vector<ShardRange> ranges = ShardRanges(bat.size(), shards, align);
  slices_.reserve(shards);
  offsets_.reserve(shards);
  for (const ShardRange& r : ranges) {
    offsets_.push_back(r.begin);
    slices_.push_back(bat.Slice(r.begin, r.end));
  }
}

ShardedBat PartitionedBat::View() const {
  ShardedBat sb;
  sb.tail_type = tail_type_;
  sb.slices.reserve(slices_.size());
  for (const Bat& s : slices_) sb.slices.push_back(&s);
  sb.offsets = offsets_;
  return sb;
}

// -- Exchange operators -----------------------------------------------------

std::vector<ShardStats> ComputeShardStats(const ShardedBat& sb,
                                          const ExecContext& ctx) {
  const size_t n = sb.num_shards();
  std::vector<ShardStats> stats(n);
  ParallelForEach(ctx, n, [&](size_t k) {
    const Bat& s = *sb.slices[k];
    ShardStats& st = stats[k];
    st.version = s.version();
    st.rows = s.size();
    const bool numeric = s.tail_type() == TailType::kInt ||
                         s.tail_type() == TailType::kFloat;
    if (!numeric) return;
    for (size_t i = 0; i < s.size(); ++i) {
      const double v = s.tail_type() == TailType::kInt
                           ? static_cast<double>(s.IntAt(i))
                           : s.FloatAt(i);
      if (std::isnan(v)) continue;
      if (!st.has_non_nan) {
        st.has_non_nan = true;
        st.min = v;
        st.max = v;
      } else {
        if (v < st.min) st.min = v;
        if (v > st.max) st.max = v;
      }
    }
  });
  return stats;
}

Bat GatherShards(const ShardedBat& sb, const ExecContext& ctx) {
  trace::SpanGuard span = ExchangeSpan(ctx, "exchange.gather");
  const size_t total = sb.rows();
  span.RowsIn(total);
  Bat out(sb.tail_type);
  out.Reserve(total);
  for (const Bat* s : sb.slices) out.Concat(*s);
  span.RowsOut(out.size());
  return out;
}

Result<Bat> ShardedSelectEq(const ShardedBat& sb, const Value& v,
                            const ExecContext& ctx,
                            const ExchangeOptions& opts) {
  if (v.type() != sb.tail_type) {
    return Status::InvalidArgument("SelectEq value type mismatch");
  }
  COBRA_ASSIGN_OR_RETURN(
      std::vector<Bat> parts,
      Scatter(sb, sb.tail_type, ctx, " op=select_eq",
              [&](size_t, const Bat& s, const ExecContext& inner) {
                return s.SelectEq(v, inner);
              }));
  return MergeParts(sb.tail_type, parts, ctx, opts);
}

Result<Bat> ShardedSelectRange(const ShardedBat& sb, double lo, double hi,
                               const ExecContext& ctx,
                               const ExchangeOptions& opts) {
  if (sb.tail_type != TailType::kInt && sb.tail_type != TailType::kFloat) {
    return Status::InvalidArgument("SelectRange requires a numeric tail");
  }
  // Partition pruning: with fresh zone maps, a shard whose value interval
  // provably misses [lo, hi] is never scanned — it would contribute zero
  // rows, so skipping it leaves the merged output byte-identical. Stats at
  // a stale version (or with a mismatched shard count) are ignored.
  const std::vector<ShardStats>* stats = opts.scan_stats;
  if (stats != nullptr && stats->size() == sb.num_shards()) {
    for (size_t k = 0; k < sb.num_shards(); ++k) {
      if ((*stats)[k].version != sb.slices[k]->version() ||
          (*stats)[k].rows != sb.slices[k]->size()) {
        stats = nullptr;
        break;
      }
    }
  } else {
    stats = nullptr;
  }
  size_t pruned = 0;
  std::vector<bool> skip(sb.num_shards(), false);
  if (stats != nullptr) {
    for (size_t k = 0; k < sb.num_shards(); ++k) {
      const ShardStats& st = (*stats)[k];
      // A NaN row never satisfies lo <= v <= hi, so an all-NaN (or empty)
      // slice is always prunable; NaN bounds compare false and prune
      // nothing (the scan correctly returns no rows).
      if (!st.has_non_nan || st.max < lo || st.min > hi) {
        skip[k] = true;
        ++pruned;
      }
    }
  }
  const std::string detail = StrFormat(" op=select_range pruned=%zu", pruned);
  COBRA_ASSIGN_OR_RETURN(
      std::vector<Bat> parts,
      Scatter(sb, sb.tail_type, ctx, detail.c_str(),
              [&](size_t k, const Bat& s,
                  const ExecContext& inner) -> Result<Bat> {
                if (skip[k]) return Bat(s.tail_type());
                return s.SelectRange(lo, hi, inner);
              }));
  return MergeParts(sb.tail_type, parts, ctx, opts);
}

Result<Bat> ShardedSelectStr(const ShardedBat& sb, const std::string& str,
                             const ExecContext& ctx,
                             const ExchangeOptions& opts) {
  if (sb.tail_type != TailType::kStr) {
    return Status::InvalidArgument("SelectStr requires a str tail");
  }
  COBRA_ASSIGN_OR_RETURN(
      std::vector<Bat> parts,
      Scatter(sb, sb.tail_type, ctx, " op=select_str",
              [&](size_t, const Bat& s, const ExecContext& inner) {
                return s.SelectStr(str, inner);
              }));
  return MergeParts(sb.tail_type, parts, ctx, opts);
}

Result<Bat> ShardedJoin(const ShardedBat& a, const Bat& b,
                        const ExecContext& ctx, const ExchangeOptions& opts) {
  if (a.tail_type != TailType::kOid) {
    return Status::InvalidArgument("Join needs an oid tail on the left BAT");
  }
  COBRA_ASSIGN_OR_RETURN(
      std::vector<Bat> parts,
      Scatter(a, b.tail_type(), ctx, " op=join",
              [&](size_t, const Bat& s, const ExecContext& inner) {
                return Join(s, b, inner);
              }));
  return MergeParts(b.tail_type(), parts, ctx, opts);
}

Result<Bat> ShardedSemijoin(const ShardedBat& a, const Bat& b,
                            const ExecContext& ctx,
                            const ExchangeOptions& opts) {
  COBRA_ASSIGN_OR_RETURN(
      std::vector<Bat> parts,
      Scatter(a, a.tail_type, ctx, " op=semijoin",
              [&](size_t, const Bat& s,
                  const ExecContext& inner) -> Result<Bat> {
                return Semijoin(s, b, inner);
              }));
  return MergeParts(a.tail_type, parts, ctx, opts);
}

Result<Bat> ShardedDiff(const ShardedBat& a, const Bat& b,
                        const ExecContext& ctx, const ExchangeOptions& opts) {
  COBRA_ASSIGN_OR_RETURN(
      std::vector<Bat> parts,
      Scatter(a, a.tail_type, ctx, " op=diff",
              [&](size_t, const Bat& s,
                  const ExecContext& inner) -> Result<Bat> {
                return Diff(s, b, inner);
              }));
  return MergeParts(a.tail_type, parts, ctx, opts);
}

Result<double> ShardedSum(const ShardedBat& sb, const ExecContext& ctx,
                          const ExchangeOptions& opts) {
  if (sb.tail_type != TailType::kInt && sb.tail_type != TailType::kFloat) {
    return Status::InvalidArgument("Sum requires a numeric tail");
  }
  const size_t quantum = ctx.MorselRows();
  const size_t total = sb.rows();
  if (!sb.AlignedTo(quantum)) {
    // Shard offsets off the context's morsel grid: refolding per-shard
    // partials would reassociate the float additions. Gather and run the
    // kernel fold instead — byte-identical, just not scatter-gather.
    const Bat gathered = GatherShards(sb, ctx);
    return gathered.Sum(ctx);
  }
  // Every shard offset sits on the global morsel grid, so the per-shard
  // morsel partials ARE the single-BAT per-morsel partials; gather them and
  // replay Bat::Sum(ctx)'s serial left fold in global morsel order.
  const size_t num = ctx.NumMorsels(total);
  std::vector<double> partial(num, 0.0);
  {
    trace::SpanGuard span = ExchangeSpan(ctx, "exchange.scatter");
    span.RowsIn(total);
    if (span.enabled()) {
      span.Detail(StrFormat("shards=%zu op=sum", sb.num_shards()));
    }
    const ExecContext inner = ShardContext(ctx, sb.num_shards(), span.span());
    ParallelForEach(ctx, sb.num_shards(), [&](size_t k) {
      const Bat& s = *sb.slices[k];
      const size_t base = sb.offsets[k] / quantum;
      ForEachMorsel(inner, s.size(), [&](size_t m, size_t begin, size_t end) {
        double acc = 0.0;
        if (s.tail_type() == TailType::kInt) {
          for (size_t i = begin; i < end; ++i) {
            acc += static_cast<double>(s.IntAt(i));
          }
        } else {
          for (size_t i = begin; i < end; ++i) acc += s.FloatAt(i);
        }
        partial[base + m] = acc;
      });
    });
    span.Morsels(num);
  }
  trace::SpanGuard merge = ExchangeSpan(ctx, "exchange.merge");
  merge.RowsIn(num);
  double acc = 0.0;
  if (opts.unsafe_unordered_merge) {
    for (size_t m = num; m-- > 0;) acc += partial[m];
  } else {
    for (double p : partial) acc += p;
  }
  merge.RowsOut(1);
  return acc;
}

Result<double> ShardedMin(const ShardedBat& sb, const ExecContext& ctx,
                          const ExchangeOptions& opts) {
  if (sb.rows() == 0) return Status::FailedPrecondition("Min of empty BAT");
  if (sb.tail_type != TailType::kInt && sb.tail_type != TailType::kFloat) {
    return Status::InvalidArgument("Min requires a numeric tail");
  }
  const size_t n = sb.num_shards();
  std::vector<double> best(n, 0.0);
  // Not vector<bool>: parallel shard workers write distinct slots, which
  // packed bits would turn into same-byte races.
  std::vector<uint8_t> has(n, 0);
  {
    trace::SpanGuard span = ExchangeSpan(ctx, "exchange.scatter");
    span.RowsIn(sb.rows());
    if (span.enabled()) span.Detail(StrFormat("shards=%zu op=min", n));
    std::vector<Status> errs(n);
    const ExecContext inner = ShardContext(ctx, n, span.span());
    ParallelForEach(ctx, n, [&](size_t k) {
      const Bat& s = *sb.slices[k];
      if (s.empty()) return;
      Result<double> r = s.Min(inner);
      if (r.ok()) {
        best[k] = r.value();
        has[k] = 1;
      } else {
        errs[k] = r.status();
      }
    });
    for (const Status& e : errs) {
      if (!e.ok()) return e;
    }
  }
  trace::SpanGuard merge = ExchangeSpan(ctx, "exchange.merge");
  merge.RowsIn(n);
  bool seen = false;
  double out = 0.0;
  for (size_t k : MergeOrder(n, opts)) {
    if (!has[k]) continue;
    if (!seen) {
      seen = true;
      out = best[k];
    } else if (BetterMin(best[k], out)) {
      out = best[k];
    }
  }
  merge.RowsOut(1);
  return out;
}

Result<size_t> ShardedArgMax(const ShardedBat& sb, const ExecContext& ctx,
                             const ExchangeOptions& opts) {
  if (sb.rows() == 0) return Status::FailedPrecondition("ArgMax of empty BAT");
  if (sb.tail_type != TailType::kInt && sb.tail_type != TailType::kFloat) {
    return Status::InvalidArgument("ArgMax requires a numeric tail");
  }
  const size_t n = sb.num_shards();
  std::vector<size_t> pos(n, 0);
  std::vector<double> val(n, 0.0);
  // Not vector<bool>: parallel shard workers write distinct slots, which
  // packed bits would turn into same-byte races.
  std::vector<uint8_t> has(n, 0);
  {
    trace::SpanGuard span = ExchangeSpan(ctx, "exchange.scatter");
    span.RowsIn(sb.rows());
    if (span.enabled()) span.Detail(StrFormat("shards=%zu op=arg_max", n));
    std::vector<Status> errs(n);
    const ExecContext inner = ShardContext(ctx, n, span.span());
    ParallelForEach(ctx, n, [&](size_t k) {
      const Bat& s = *sb.slices[k];
      if (s.empty()) return;
      Result<size_t> r = s.ArgMax(inner);
      if (!r.ok()) {
        errs[k] = r.status();
        return;
      }
      pos[k] = sb.offsets[k] + r.value();
      val[k] = s.tail_type() == TailType::kInt
                   ? static_cast<double>(s.IntAt(r.value()))
                   : s.FloatAt(r.value());
      has[k] = 1;
    });
    for (const Status& e : errs) {
      if (!e.ok()) return e;
    }
  }
  // Strictly-better combine in shard order: ties resolve to the lowest
  // global position, matching the kernel's serial and morsel scans.
  trace::SpanGuard merge = ExchangeSpan(ctx, "exchange.merge");
  merge.RowsIn(n);
  bool seen = false;
  size_t best_pos = 0;
  double best_val = 0.0;
  for (size_t k : MergeOrder(n, opts)) {
    if (!has[k]) continue;
    if (!seen) {
      seen = true;
      best_pos = pos[k];
      best_val = val[k];
    } else if (BetterMax(val[k], best_val)) {
      best_val = val[k];
      best_pos = pos[k];
    }
  }
  merge.RowsOut(1);
  return best_pos;
}

Result<double> ShardedMax(const ShardedBat& sb, const ExecContext& ctx,
                          const ExchangeOptions& opts) {
  // Delegates to ShardedArgMax, like Bat::Max delegates to ArgMax (same
  // error messages, same tie resolution).
  COBRA_ASSIGN_OR_RETURN(size_t gpos, ShardedArgMax(sb, ctx, opts));
  for (size_t k = 0; k < sb.num_shards(); ++k) {
    const Bat& s = *sb.slices[k];
    if (gpos >= sb.offsets[k] && gpos < sb.offsets[k] + s.size()) {
      const size_t i = gpos - sb.offsets[k];
      return s.tail_type() == TailType::kInt ? static_cast<double>(s.IntAt(i))
                                             : s.FloatAt(i);
    }
  }
  return Status::Internal("ShardedMax: ArgMax position outside every shard");
}

Result<Bat> ShardedGroup(const ShardedBat& sb,
                         std::vector<size_t>* representatives,
                         const ExecContext& ctx, const ExchangeOptions& opts) {
  const size_t n = sb.num_shards();
  std::vector<Bat> parts(n, Bat(TailType::kOid));
  std::vector<std::vector<size_t>> reps(n);
  {
    trace::SpanGuard span = ExchangeSpan(ctx, "exchange.scatter");
    span.RowsIn(sb.rows());
    if (span.enabled()) span.Detail(StrFormat("shards=%zu op=group", n));
    const ExecContext inner = ShardContext(ctx, n, span.span());
    ParallelForEach(ctx, n, [&](size_t k) {
      parts[k] = Group(*sb.slices[k], &reps[k], inner);
    });
  }
  // Merge: assign global dense ids by walking the shards in merge order and
  // the local groups in local first-occurrence order. Keys must be portable
  // across shards: the string itself for str tails (local dictionary codes
  // are shard-private), the canonical -0.0-normalized 64-bit key otherwise
  // — both induce exactly the equality Group's TailKeyAt hashing induces,
  // so the numbering equals the single-BAT first-occurrence order.
  trace::SpanGuard merge = ExchangeSpan(ctx, "exchange.merge");
  merge.RowsIn(sb.rows());
  std::unordered_map<uint64_t, Oid> global_num;
  std::unordered_map<std::string, Oid> global_str;
  if (representatives != nullptr) representatives->clear();
  std::vector<std::vector<Oid>> local_to_global(n);
  const std::vector<size_t> order = MergeOrder(n, opts);
  for (size_t k : order) {
    const Bat& s = *sb.slices[k];
    local_to_global[k].reserve(reps[k].size());
    for (size_t local_pos : reps[k]) {
      Oid gid = 0;
      bool inserted = false;
      if (sb.tail_type == TailType::kStr) {
        auto [it, ins] = global_str.try_emplace(
            s.StrAt(local_pos),
            static_cast<Oid>(global_str.size() + global_num.size()));
        gid = it->second;
        inserted = ins;
      } else {
        auto [it, ins] = global_num.try_emplace(
            s.TailKeyAt(local_pos),
            static_cast<Oid>(global_str.size() + global_num.size()));
        gid = it->second;
        inserted = ins;
      }
      if (inserted && representatives != nullptr) {
        representatives->push_back(sb.offsets[k] + local_pos);
      }
      local_to_global[k].push_back(gid);
    }
  }
  size_t total = 0;
  for (const Bat& p : parts) total += p.size();
  std::vector<Oid> heads;
  std::vector<Oid> gids;
  heads.reserve(total);
  gids.reserve(total);
  for (size_t k : order) {
    const Bat& p = parts[k];
    for (size_t i = 0; i < p.size(); ++i) {
      heads.push_back(p.HeadAt(i));
      gids.push_back(local_to_global[k][p.OidAt(i)]);
    }
  }
  Bat out = Bat::FromOidColumns(std::move(heads), std::move(gids));
  merge.RowsOut(out.size());
  return out;
}

// -- ShardedCatalog ---------------------------------------------------------

ShardedCatalog::ShardedCatalog(size_t num_shards, size_t align)
    : align_(align) {
  COBRA_CHECK(num_shards > 0);
  COBRA_CHECK(align > 0);
  shards_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    shards_.push_back(std::make_unique<Catalog>());
  }
}

Status ShardedCatalog::Create(const std::string& name, TailType tail_type) {
  for (auto& shard : shards_) {
    COBRA_ASSIGN_OR_RETURN(Bat * bat, shard->Create(name, tail_type));
    (void)bat;
  }
  return Status::OK();
}

Status ShardedCatalog::Put(const std::string& name, const Bat& bat) {
  const std::vector<ShardRange> ranges =
      ShardRanges(bat.size(), shards_.size(), align_);
  for (size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->Put(name, bat.Slice(ranges[k].begin, ranges[k].end));
  }
  return Status::OK();
}

Status ShardedCatalog::Append(const std::string& name, Oid head,
                              const Value& tail) {
  COBRA_ASSIGN_OR_RETURN(Bat * bat, shards_.back()->Get(name));
  return bat->Append(head, tail);
}

Status ShardedCatalog::Drop(const std::string& name) {
  for (auto& shard : shards_) {
    COBRA_RETURN_IF_ERROR(shard->Drop(name));
  }
  return Status::OK();
}

bool ShardedCatalog::Exists(const std::string& name) const {
  return shards_[0]->Exists(name);
}

Result<ShardedBat> ShardedCatalog::View(const std::string& name) const {
  ShardedBat sb;
  sb.slices.reserve(shards_.size());
  sb.offsets.reserve(shards_.size());
  size_t offset = 0;
  for (const auto& shard : shards_) {
    COBRA_ASSIGN_OR_RETURN(const Bat* bat, shard->Get(name));
    sb.slices.push_back(bat);
    sb.offsets.push_back(offset);
    offset += bat->size();
  }
  sb.tail_type = sb.slices[0]->tail_type();
  return sb;
}

Result<Bat> ShardedCatalog::Gather(const std::string& name,
                                   const ExecContext& ctx) const {
  COBRA_ASSIGN_OR_RETURN(ShardedBat sb, View(name));
  return GatherShards(sb, ctx);
}

Result<size_t> ShardedCatalog::Rows(const std::string& name) const {
  COBRA_ASSIGN_OR_RETURN(ShardedBat sb, View(name));
  return sb.rows();
}

Result<std::vector<ShardStats>> ShardedCatalog::ScanStats(
    const std::string& name, const ExecContext& ctx) const {
  COBRA_ASSIGN_OR_RETURN(ShardedBat sb, View(name));
  std::vector<uint64_t> versions;
  versions.reserve(sb.num_shards());
  for (const Bat* s : sb.slices) versions.push_back(s->version());
  MutexLock lock(mu_);
  auto it = scan_cache_.find(name);
  if (it != scan_cache_.end() && it->second.versions == versions) {
    return it->second.stats;
  }
  CachedStats fresh;
  fresh.versions = std::move(versions);
  fresh.stats = ComputeShardStats(sb, ctx);
  std::vector<ShardStats> out = fresh.stats;
  scan_cache_[name] = std::move(fresh);
  return out;
}

Status ShardedCatalog::AttachStores(io::Fs* fs, const std::string& dir) {
  stores_.clear();
  stores_.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    auto store = std::make_unique<PersistentStore>(fs, ShardDir(dir, k));
    COBRA_RETURN_IF_ERROR(store->Open());
    shards_[k]->AttachStore(store.get());
    stores_.push_back(std::move(store));
  }
  return Status::OK();
}

Status ShardedCatalog::Checkpoint(const ExecContext& ctx,
                                  std::string_view extra) {
  if (stores_.size() != shards_.size()) {
    return Status::FailedPrecondition(
        "ShardedCatalog::Checkpoint requires AttachStores");
  }
  std::vector<Status> errs(shards_.size());
  ParallelForEach(ctx, shards_.size(), [&](size_t k) {
    errs[k] = stores_[k]->Checkpoint(*shards_[k], extra);
  });
  for (const Status& e : errs) {
    if (!e.ok()) return e;
  }
  return Status::OK();
}

Result<std::vector<PersistentStore::RecoveryInfo>> ShardedCatalog::Recover(
    const ExecContext& ctx) {
  if (stores_.size() != shards_.size()) {
    return Status::FailedPrecondition(
        "ShardedCatalog::Recover requires AttachStores");
  }
  std::vector<Status> errs(shards_.size());
  std::vector<PersistentStore::RecoveryInfo> infos(shards_.size());
  ParallelForEach(ctx, shards_.size(), [&](size_t k) {
    Result<PersistentStore::RecoveryInfo> r =
        stores_[k]->Recover(shards_[k].get());
    if (r.ok()) {
      infos[k] = std::move(r).value();
    } else {
      errs[k] = r.status();
    }
  });
  for (const Status& e : errs) {
    if (!e.ok()) return e;
  }
  MutexLock lock(mu_);
  scan_cache_.clear();
  return infos;
}

std::string ShardedCatalog::ShardDir(const std::string& dir, size_t k) {
  return StrFormat("%s/shard-%zu", dir.c_str(), k);
}

size_t ShardedCatalog::DiscoverShardCount(const io::Fs& fs,
                                          const std::string& dir) {
  size_t k = 0;
  while (PersistentStore::Exists(fs, ShardDir(dir, k))) ++k;
  return k;
}

}  // namespace cobra::kernel
