#ifndef COBRA_KERNEL_EXEC_CONTEXT_H_
#define COBRA_KERNEL_EXEC_CONTEXT_H_

#include <cstddef>
#include <functional>

namespace cobra::trace {
class TraceSink;
struct Span;
}  // namespace cobra::trace

namespace cobra::kernel {

/// Execution parameters for the kernel's parallel operators — the repo's
/// counterpart of the MIL `threadcnt` setting the paper sets before fanning
/// work out over processors (Fig. 4). A context is threaded explicitly
/// through the layers (MIL session, Moa session, query engine) so each
/// caller controls its own degree of parallelism on the shared KernelPool().
///
/// Operators fall back to the serial path when the input is small
/// (`serial_cutoff`) — morsel scheduling overhead would dominate — and
/// otherwise split the input into fixed-size morsels that `threadcnt`
/// workers pull from a shared counter (morsel-driven scheduling). Morsel
/// boundaries depend only on `morsel_rows`, never on `threadcnt`, so
/// order-sensitive merges and floating-point reductions produce
/// byte-identical results at every thread count.
struct ExecContext {
  static constexpr size_t kDefaultMorselRows = size_t{1} << 16;
  static constexpr size_t kDefaultSerialCutoff = size_t{1} << 14;

  /// Number of concurrent workers an operator may occupy (>= 1).
  int threadcnt = 1;
  /// Number of shards scatter-gather execution fans out over (>= 1). 1 is
  /// the single-catalog plan. The MIL `shards(n)` statement sets it and the
  /// exchange operators of kernel/shard.h consume it; each shard's inner
  /// kernel call receives threadcnt / shards workers. Like threadcnt,
  /// results are byte-identical at every value.
  int shards = 1;
  /// Rows per morsel; the unit of scheduling and of deterministic reduction.
  size_t morsel_rows = kDefaultMorselRows;
  /// Inputs with fewer rows than this always take the serial path.
  size_t serial_cutoff = kDefaultSerialCutoff;
  /// Whether operators may probe (and lazily build) the persistent per-BAT
  /// hash indexes. Off forces the pre-index scan/partitioned plans — the
  /// cold baseline benchmarks compare against. Results are byte-identical
  /// either way.
  bool auto_index = true;

  /// Profiling sink. Null (the default) keeps instrumented operators
  /// zero-cost: no span allocation, no clock reads, no locks. Installing a
  /// sink makes every operator record a trace::Span (rows in/out, morsels,
  /// index and dictionary events) under `trace_parent`.
  ::cobra::trace::TraceSink* trace = nullptr;
  /// Span the next operator nests under; null records a new root span.
  ::cobra::trace::Span* trace_parent = nullptr;

  /// A strictly serial context (the default).
  static ExecContext Serial() { return ExecContext{}; }
  /// threadcnt = hardware concurrency (>= 2).
  static ExecContext Hardware();

  /// This context with spans parented under `parent` — how a layer wraps
  /// the kernel operators it invokes into its own span.
  ExecContext WithTraceParent(::cobra::trace::Span* parent) const {
    ExecContext child = *this;
    child.trace_parent = parent;
    return child;
  }

  /// Whether an operator over `rows` rows should go parallel.
  bool UseParallel(size_t rows) const {
    return threadcnt > 1 && rows >= serial_cutoff && rows > MorselRows();
  }

  /// morsel_rows guarded against 0 (treated as "one morsel").
  size_t MorselRows() const {
    return morsel_rows == 0 ? ~size_t{0} : morsel_rows;
  }

  /// Number of morsels covering `rows` rows.
  size_t NumMorsels(size_t rows) const {
    if (rows == 0) return 0;
    return (rows + MorselRows() - 1) / MorselRows();
  }
};

/// Runs fn(morsel, begin, end) for every morsel of [0, rows). Serial (in
/// morsel order) when ctx.UseParallel(rows) is false; otherwise
/// ctx.threadcnt workers on KernelPool() pull morsel indices from a shared
/// counter. fn must be safe to call concurrently for distinct morsels;
/// order-dependent results belong in per-morsel slots merged by the caller
/// in morsel order.
void ForEachMorsel(const ExecContext& ctx, size_t rows,
                   const std::function<void(size_t, size_t, size_t)>& fn);

/// Runs fn(i) for i in [0, count) with at most ctx.threadcnt concurrent
/// workers (serial when threadcnt == 1 or count <= 1). Used for
/// partition-parallel phases where the unit of work is not a row range.
void ParallelForEach(const ExecContext& ctx, size_t count,
                     const std::function<void(size_t)>& fn);

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_EXEC_CONTEXT_H_
