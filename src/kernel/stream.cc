#include "kernel/stream.h"

#include <algorithm>
#include <utility>

#include "base/strings.h"
#include "base/trace.h"
#include "kernel/catalog.h"
#include "kernel/persist.h"

namespace cobra::kernel {

StreamBat::StreamBat(Catalog* catalog, Bat* bat, std::string name,
                     Options opts, PersistentStore* store)
    : catalog_(catalog),
      bat_(bat),
      name_(std::move(name)),
      opts_(opts),
      store_(store) {
  if (opts_.segment_rows == 0) opts_.segment_rows = 1;
}

Result<StreamBat> StreamBat::Attach(Catalog* catalog, const std::string& name,
                                    const Options& opts,
                                    PersistentStore* store) {
  COBRA_ASSIGN_OR_RETURN(Bat * bat, catalog->Get(name));
  StreamBat stream(catalog, bat, name, opts, store);
  // Streaming mode: keep accreted indexes fresh per append instead of
  // invalidate-and-rebuild. The defect seam leaves maintenance off so the
  // stamped-fresh indexes really are stale.
  bat->set_append_maintenance(opts.maintain_indexes &&
                              !opts.unsafe_skip_tail_reindex);
  // Restore the segmentation recorded by WalOp::kSegmentSeal replay (or by
  // a previous attachment in this process).
  if (auto seals = catalog->Get(SegmentSealBatName(name)); seals.ok()) {
    const Bat& sb = *seals.value();
    for (size_t i = 0; i < sb.size(); ++i) {
      const uint64_t end_row = sb.OidAt(i);
      if (end_row <= stream.sealed_rows_ || end_row > bat->size()) {
        return Status::Internal(StrFormat(
            "stream '%s': corrupt seal boundary %llu at ordinal %zu "
            "(previous %llu, BAT has %zu rows)",
            name.c_str(), static_cast<unsigned long long>(end_row), i,
            static_cast<unsigned long long>(stream.sealed_rows_),
            bat->size()));
      }
      Segment seg;
      seg.begin_row = stream.sealed_rows_;
      seg.end_row = end_row;
      seg.sealed = true;
      ExtendZone(*bat, seg.begin_row, seg.end_row, &seg);
      stream.sealed_.push_back(seg);
      stream.sealed_rows_ = end_row;
    }
  }
  // Pre-existing unsealed rows start out in the mutable tail; no seals are
  // written during attach (the next Append/Advance may seal).
  stream.visible_rows_ = stream.sealed_rows_;
  stream.tail_.begin_row = stream.sealed_rows_;
  stream.tail_.end_row = stream.sealed_rows_;
  const uint64_t size = bat->size();
  if (size > stream.visible_rows_) {
    ExtendZone(*bat, stream.visible_rows_, size, &stream.tail_);
    stream.tail_.end_row = size;
    stream.visible_rows_ = size;
  }
  return stream;
}

void StreamBat::ExtendZone(const Bat& bat, uint64_t begin, uint64_t end,
                           Segment* seg) {
  const TailType t = bat.tail_type();
  if (t != TailType::kInt && t != TailType::kFloat) return;
  for (uint64_t i = begin; i < end; ++i) {
    const double v = t == TailType::kInt
                         ? static_cast<double>(bat.IntAt(i))
                         : bat.FloatAt(i);
    if (!seg->has_zone) {
      seg->has_zone = true;
      seg->min_num = v;
      seg->max_num = v;
    } else {
      seg->min_num = std::min(seg->min_num, v);
      seg->max_num = std::max(seg->max_num, v);
    }
  }
}

Status StreamBat::Seal(uint64_t end_row) {
  // WAL record first — the fsync'd kSegmentSeal is the commit point; the
  // in-memory and catalog mutations below mirror exactly what its replay
  // does, so recovery lands exactly-before or exactly-after this seal.
  if (store_ != nullptr) {
    COBRA_RETURN_IF_ERROR(store_->LogSegmentSeal(name_, end_row));
  }
  const std::string seals_name = SegmentSealBatName(name_);
  Bat* seals = nullptr;
  if (auto existing = catalog_->Get(seals_name); existing.ok()) {
    seals = existing.value();
  } else {
    COBRA_ASSIGN_OR_RETURN(seals, catalog_->Create(seals_name, TailType::kOid));
  }
  seals->AppendOid(static_cast<Oid>(seals->size()), end_row);

  Segment seg;
  seg.begin_row = sealed_rows_;
  seg.end_row = end_row;
  seg.sealed = true;
  ExtendZone(*bat_, seg.begin_row, seg.end_row, &seg);
  sealed_.push_back(seg);
  sealed_rows_ = end_row;
  ++stats_.seals;
  // Rebuild the tail zone over the remaining unsealed rows.
  tail_ = Segment{};
  tail_.begin_row = sealed_rows_;
  tail_.end_row = visible_rows_;
  ExtendZone(*bat_, sealed_rows_, visible_rows_, &tail_);
  return Status::OK();
}

Status StreamBat::Fold(const ExecContext& ctx) {
  (void)ctx;
  const uint64_t size = bat_->size();
  if (size < visible_rows_) {
    return Status::Internal(StrFormat(
        "stream '%s': backing BAT shrank (%zu rows, %llu folded)",
        name_.c_str(), static_cast<size_t>(size),
        static_cast<unsigned long long>(visible_rows_)));
  }
  if (size > visible_rows_) {
    ExtendZone(*bat_, visible_rows_, size, &tail_);
    tail_.end_row = size;
    visible_rows_ = size;
  }
  while (visible_rows_ - sealed_rows_ >= opts_.segment_rows) {
    COBRA_RETURN_IF_ERROR(Seal(sealed_rows_ + opts_.segment_rows));
  }
  return Status::OK();
}

Status StreamBat::Append(Oid head, const Value& tail, const ExecContext& ctx) {
  trace::SpanGuard span(ctx.trace, ctx.trace_parent, "stream.append");
  if (span.enabled()) span.Detail(name_);
  span.RowsIn(1);
  if (store_ != nullptr) {
    COBRA_RETURN_IF_ERROR(store_->LogAppend(name_, head, tail));
  }
  COBRA_RETURN_IF_ERROR(bat_->Append(head, tail));
  ++stats_.appends;
  span.RowsOut(1);
  COBRA_RETURN_IF_ERROR(Fold(ctx));
  if (opts_.unsafe_skip_tail_reindex) bat_->unsafe_stamp_indexes_fresh();
  return Status::OK();
}

Status StreamBat::Advance(const ExecContext& ctx) {
  trace::SpanGuard span(ctx.trace, ctx.trace_parent, "stream.advance");
  if (span.enabled()) span.Detail(name_);
  const uint64_t before = visible_rows_;
  COBRA_RETURN_IF_ERROR(Fold(ctx));
  span.RowsIn(visible_rows_ - before);
  span.RowsOut(visible_rows_ - before);
  if (opts_.unsafe_skip_tail_reindex) bat_->unsafe_stamp_indexes_fresh();
  return Status::OK();
}

Result<Bat> StreamBat::ScanWindow(double lo, double hi,
                                  const ExecContext& ctx) const {
  trace::SpanGuard span(ctx.trace, ctx.trace_parent, "stream.scan");
  if (span.enabled()) {
    span.Detail(StrFormat("%s [%g, %g]", name_.c_str(), lo, hi));
  }
  const TailType t = bat_->tail_type();
  if (t != TailType::kInt && t != TailType::kFloat) {
    return Status::InvalidArgument("ScanWindow requires a numeric tail");
  }
  ++stats_.scans;
  Bat out(t);
  // Walk the row space in order — sealed segments, tail, then any rows not
  // yet folded — so the output is byte-identical to Bat::SelectRange over
  // every row; only the zone-map pruning of sealed segments differs.
  const auto scan = [&](uint64_t begin, uint64_t end) {
    span.RowsIn(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      if (t == TailType::kInt) {
        const double v = static_cast<double>(bat_->IntAt(i));
        if (v >= lo && v <= hi) out.AppendInt(bat_->HeadAt(i), bat_->IntAt(i));
      } else {
        const double v = bat_->FloatAt(i);
        if (v >= lo && v <= hi) {
          out.AppendFloat(bat_->HeadAt(i), bat_->FloatAt(i));
        }
      }
    }
  };
  for (const Segment& seg : sealed_) {
    if (seg.has_zone && (seg.max_num < lo || seg.min_num > hi)) {
      ++stats_.segments_pruned;
      continue;
    }
    ++stats_.segments_scanned;
    span.Morsels(1);
    scan(seg.begin_row, seg.end_row);
  }
  if (visible_rows_ > sealed_rows_) {
    ++stats_.segments_scanned;
    span.Morsels(1);
    scan(sealed_rows_, visible_rows_);
  }
  if (bat_->size() > visible_rows_) scan(visible_rows_, bat_->size());
  span.RowsOut(out.size());
  return out;
}

Result<uint64_t> StreamBat::CountEq(const Value& v,
                                    const ExecContext& ctx) const {
  trace::SpanGuard span(ctx.trace, ctx.trace_parent, "stream.count");
  if (span.enabled()) span.Detail(name_);
  span.RowsIn(bat_->size());
  Result<uint64_t> r = bat_->CountEq(v);
  if (r.ok()) span.RowsOut(r.value());
  return r;
}

std::vector<StreamBat::Segment> StreamBat::Segments() const {
  std::vector<Segment> out = sealed_;
  Segment tail = tail_;
  tail.begin_row = sealed_rows_;
  tail.end_row = visible_rows_;
  tail.sealed = false;
  out.push_back(tail);
  return out;
}

}  // namespace cobra::kernel
