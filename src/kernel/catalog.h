#ifndef COBRA_KERNEL_CATALOG_H_
#define COBRA_KERNEL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "kernel/bat.h"

namespace cobra::kernel {

/// Named-BAT catalog — the kernel's persistent variable environment. Moa
/// operator programs address their operand columns through it, and the Cobra
/// metadata layers (feature/object/event) store their decomposed relations
/// here.
///
/// `mu_` guards the name -> BAT map only; the returned Bat pointers are
/// handed out unlocked (a binding stays alive until Drop/Put replaces it,
/// and Bat itself documents its own concurrency contract).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty BAT under `name`; error if the name exists.
  Result<Bat*> Create(const std::string& name, TailType tail_type)
      COBRA_EXCLUDES(mu_);

  /// Returns the BAT registered under `name`, or NotFound.
  Result<Bat*> Get(const std::string& name) COBRA_EXCLUDES(mu_);
  Result<const Bat*> Get(const std::string& name) const COBRA_EXCLUDES(mu_);

  /// Registers (moves) an existing BAT; overwrites any previous binding.
  Bat* Put(const std::string& name, Bat bat) COBRA_EXCLUDES(mu_);

  /// Drops a binding; error if absent.
  Status Drop(const std::string& name) COBRA_EXCLUDES(mu_);

  bool Exists(const std::string& name) const COBRA_EXCLUDES(mu_);

  /// All registered names, sorted.
  std::vector<std::string> Names() const COBRA_EXCLUDES(mu_);

  /// Per-BAT acceleration snapshot (index lifecycle + dictionary state).
  struct BatStats {
    std::string name;
    TailType tail_type;
    size_t rows = 0;
    Bat::AccelInfo accel;
  };

  /// Stats for every registered BAT, in name order. Reads the live BATs in
  /// place, so accreted indexes show up (catalog copies would not carry
  /// them).
  std::vector<BatStats> Stats() const COBRA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Bat>> bats_ COBRA_GUARDED_BY(mu_);
};

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_CATALOG_H_
