#ifndef COBRA_KERNEL_CATALOG_H_
#define COBRA_KERNEL_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "kernel/bat.h"

namespace cobra::kernel {

class PersistentStore;

/// Named-BAT catalog — the kernel's persistent variable environment. Moa
/// operator programs address their operand columns through it, and the Cobra
/// metadata layers (feature/object/event) store their decomposed relations
/// here.
///
/// `mu_` guards the name -> BAT map only; the returned Bat pointers are
/// handed out unlocked (a binding stays alive until Drop/Put replaces it,
/// and Bat itself documents its own concurrency contract).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty BAT under `name`; error if the name exists.
  Result<Bat*> Create(const std::string& name, TailType tail_type)
      COBRA_EXCLUDES(mu_);

  /// Returns the BAT registered under `name`, or NotFound.
  Result<Bat*> Get(const std::string& name) COBRA_EXCLUDES(mu_);
  Result<const Bat*> Get(const std::string& name) const COBRA_EXCLUDES(mu_);

  /// Registers (moves) an existing BAT; overwrites any previous binding.
  Bat* Put(const std::string& name, Bat bat) COBRA_EXCLUDES(mu_);

  /// Drops a binding; error if absent.
  Status Drop(const std::string& name) COBRA_EXCLUDES(mu_);

  /// Renames a binding; NotFound if `from` is absent, AlreadyExists if `to`
  /// is taken. The Bat object (and its accreted indexes) moves untouched.
  Status Rename(const std::string& from, const std::string& to)
      COBRA_EXCLUDES(mu_);

  bool Exists(const std::string& name) const COBRA_EXCLUDES(mu_);

  /// Catalog-wide mutation counter — the namespace analogue of a BAT's
  /// per-object version. Bumped by every successful Create/Put/Drop/Rename,
  /// so snapshot/epoch machinery can detect "some binding changed" with one
  /// lock-free load instead of walking every BAT. Per-row appends do NOT
  /// bump it (they bump the owning BAT's version); layers that snapshot row
  /// data combine this with their own mutation counters.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// All registered names, sorted.
  std::vector<std::string> Names() const COBRA_EXCLUDES(mu_);

  /// Associates a persistence store with this catalog, purely for Stats()
  /// reporting (on-disk footprint, checkpoint LSN). The catalog never calls
  /// mutating store methods; pass nullptr to detach. Not owned; the store
  /// must outlive the attachment.
  void AttachStore(const PersistentStore* store) COBRA_EXCLUDES(mu_);

  /// Per-BAT acceleration snapshot (index lifecycle + dictionary state).
  struct BatStats {
    std::string name;
    TailType tail_type;
    size_t rows = 0;
    Bat::AccelInfo accel;
  };

  /// Durability snapshot of the attached store (zeros when detached).
  struct StoreStats {
    bool attached = false;
    uint64_t checkpoint_lsn = 0;  // generation of the newest snapshot
    uint64_t last_lsn = 0;        // newest durable log sequence number
    uint64_t on_disk_bytes = 0;   // snapshot + WAL footprint
    uint64_t snapshot_files = 0;
    uint64_t wal_files = 0;
  };

  struct CatalogStats {
    std::vector<BatStats> bats;  // name order
    StoreStats store;
  };

  /// Stats for every registered BAT, in name order, plus the durability
  /// state of the attached store. Reads the live BATs in place, so accreted
  /// indexes show up (catalog copies would not carry them).
  CatalogStats Stats() const COBRA_EXCLUDES(mu_);

  /// Stats() rendered as a JSON object (strict: passes trace::ValidateJson):
  /// {"bats": [{name, tail_type, rows, dict_entries, ...} ...],
  ///  "store": {attached, checkpoint_lsn, last_lsn, on_disk_bytes, ...}}.
  std::string StatsJson() const COBRA_EXCLUDES(mu_);

 private:
  void Bump() { version_.fetch_add(1, std::memory_order_acq_rel); }

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Bat>> bats_ COBRA_GUARDED_BY(mu_);
  const PersistentStore* store_ COBRA_GUARDED_BY(mu_) = nullptr;
  /// Mutated only under mu_, read lock-free by version().
  std::atomic<uint64_t> version_{0};
};

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_CATALOG_H_
