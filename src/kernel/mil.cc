#include "kernel/mil.h"

#include <cctype>
#include <cstdlib>
#include <functional>
#include <cmath>

#include "base/strings.h"
#include "kernel/mil_lexer.h"
#include "kernel/persist.h"
#include "kernel/shard.h"

namespace cobra::kernel {
namespace {

using Token = MilToken;

Result<double> AsNumber(const MilValue& v, const char* context) {
  if (const double* d = std::get_if<double>(&v)) return *d;
  return Status::InvalidArgument(std::string("expected a number for ") +
                                 context);
}

Result<const Bat*> AsBat(const MilValue& v, const char* context) {
  if (const Bat* bat = std::get_if<Bat>(&v)) return bat;
  return Status::InvalidArgument(std::string("expected a BAT for ") + context);
}

std::string ValueToString(const MilValue& v) {
  if (const double* d = std::get_if<double>(&v)) return StrFormat("%g", *d);
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  const Bat& bat = std::get<Bat>(v);
  std::string out = StrFormat("BAT[oid,%s] #%zu {",
                              std::string(TailTypeName(bat.tail_type())).c_str(),
                              bat.size());
  const size_t show = std::min<size_t>(bat.size(), 6);
  for (size_t i = 0; i < show; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%llu->%s",
                     static_cast<unsigned long long>(bat.HeadAt(i)),
                     bat.TailAt(i).ToString().c_str());
  }
  if (bat.size() > show) out += ", ...";
  out += "}";
  return out;
}

}  // namespace

MilSession::MilSession(Catalog* catalog, std::string data_dir)
    : catalog_(catalog),
      fs_(io::RealFilesystem()),
      data_dir_(std::move(data_dir)) {
  if (data_dir_.empty()) {
    if (const char* env = std::getenv("COBRA_DATA_DIR")) data_dir_ = env;
  }
}

MilSession::~MilSession() {
  // The catalog outlives the session; drop its pointer to our store.
  if (store_ != nullptr) catalog_->AttachStore(nullptr);
}

Result<const MilValue*> MilSession::Get(const std::string& name) const {
  auto it = variables_.find(name);
  if (it == variables_.end()) {
    return Status::NotFound("no MIL variable " + name);
  }
  return &it->second;
}

Result<std::string> MilSession::Execute(const std::string& script) {
  // Compile-time verification first: a script that cannot execute cleanly
  // is rejected with a positioned diagnostic before ANY operator runs, so a
  // failing script never leaves partial side effects behind. The same
  // abstract-interpretation pass yields per-call-site PlanFacts — static
  // cardinality intervals and provable-empty / single-shard proofs — keyed
  // by the 1-based line/column of each call's name token; the operator
  // branches below attach them to trace spans and apply the rewrites.
  std::map<std::pair<int, int>, PlanFact> facts;
  {
    MilAnalysisContext actx;
    actx.catalog = catalog_;
    actx.variables = &variables_;
    actx.trace_ready = trace_sink_ != nullptr;
    actx.fs = fs_;
    actx.data_dir_attached = !data_dir_.empty();
    actx.shards = exec_.shards;
    actx.morsel_rows = exec_.MorselRows();
    actx.unsafe_narrow_intervals = unsafe_narrow_intervals_;
    MilAnalysis analysis = AnalyzeMilScriptWithFacts(script, actx);
    COBRA_RETURN_IF_ERROR(analysis.diags.ToStatus("mil"));
    for (PlanFact& fact : analysis.facts) {
      facts.emplace(std::make_pair(fact.line, fact.col), std::move(fact));
    }
  }

  MilLexer lexer(script);
  std::string output;

  // Sharded operator routing: with shards(n) > 1 in effect, the operand is
  // partitioned on the context's morsel grid (so even Sum's float fold is
  // byte-identical) and the exchange operators scatter/merge it.
  const auto exchange_opts = [this]() {
    ExchangeOptions opts;
    opts.unsafe_unordered_merge = unsafe_unordered_merge_;
    return opts;
  };
  const auto partitioned = [this](const Bat& bat) {
    return PartitionedBat(bat, static_cast<size_t>(exec_.shards),
                          exec_.MorselRows());
  };
  const auto find_fact = [&facts](const Token& name_tok) -> const PlanFact* {
    const auto it = facts.find(std::make_pair(name_tok.line, name_tok.col));
    return it == facts.end() ? nullptr : &it->second;
  };

  // Recursive-descent expression evaluation over the token stream. The
  // parser is LL(1) with one pushed-back token. Nesting is bounded so a
  // pathological script ("f(f(f(...")) yields a typed error instead of
  // exhausting the call stack.
  constexpr int kMaxExprDepth = 200;
  std::vector<Token> pushed;
  auto next = [&]() -> Result<Token> {
    if (!pushed.empty()) {
      Token tok = std::move(pushed.back());
      pushed.pop_back();
      return tok;
    }
    return lexer.Next();
  };
  auto push_back = [&](Token tok) { pushed.push_back(std::move(tok)); };

  std::function<Result<MilValue>(int)> parse_expr =
      [&](int depth) -> Result<MilValue> {
    if (depth > kMaxExprDepth) {
      return Status::InvalidArgument("MIL expression nested too deeply");
    }
    COBRA_ASSIGN_OR_RETURN(Token tok, next());
    if (tok.kind == Token::Kind::kNumber) return MilValue(tok.number);
    if (tok.kind == Token::Kind::kString) return MilValue(tok.text);
    if (tok.kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected expression, got '" + tok.text +
                                     "'");
    }
    const std::string name = tok.text;
    // The analyzer keys PlanFacts on the name token's position; keep it.
    const Token name_tok = tok;
    COBRA_ASSIGN_OR_RETURN(Token after, next());
    if (after.kind != Token::Kind::kLParen) {
      push_back(after);
      auto it = variables_.find(name);
      if (it == variables_.end()) {
        return Status::NotFound("unknown MIL variable " + name);
      }
      return MilValue(it->second);
    }
    // Function call: parse comma-separated arguments.
    std::vector<MilValue> args;
    COBRA_ASSIGN_OR_RETURN(Token peek, next());
    if (peek.kind != Token::Kind::kRParen) {
      push_back(peek);
      for (;;) {
        COBRA_ASSIGN_OR_RETURN(MilValue arg, parse_expr(depth + 1));
        args.push_back(std::move(arg));
        COBRA_ASSIGN_OR_RETURN(Token sep, next());
        if (sep.kind == Token::Kind::kRParen) break;
        if (sep.kind != Token::Kind::kComma) {
          return Status::InvalidArgument("expected ',' or ')' in call to " +
                                         name);
        }
      }
    }
    auto arity = [&](size_t n) -> Status {
      if (args.size() != n) {
        return Status::InvalidArgument(
            StrFormat("%s expects %zu arguments, got %zu", name.c_str(), n,
                      args.size()));
      }
      return Status::OK();
    };

    if (name == "bat") {
      COBRA_RETURN_IF_ERROR(arity(1));
      const std::string* bat_name = std::get_if<std::string>(&args[0]);
      if (bat_name == nullptr) {
        return Status::InvalidArgument("bat() expects a name string");
      }
      COBRA_ASSIGN_OR_RETURN(
          const Bat* bat,
          static_cast<const Catalog*>(catalog_)->Get(*bat_name));
      return MilValue(*bat);
    }
    if (name == "persist") {
      COBRA_RETURN_IF_ERROR(arity(2));
      const std::string* bat_name = std::get_if<std::string>(&args[0]);
      if (bat_name == nullptr) {
        return Status::InvalidArgument("persist() expects a name string");
      }
      COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[1], "persist"));
      catalog_->Put(*bat_name, Bat(*bat));
      return MilValue(*bat);
    }
    if (name == "new") {
      COBRA_RETURN_IF_ERROR(arity(1));
      const std::string* type = std::get_if<std::string>(&args[0]);
      if (type == nullptr) {
        return Status::InvalidArgument("new() expects a type string");
      }
      if (*type == "int") return MilValue(Bat(TailType::kInt));
      if (*type == "dbl") return MilValue(Bat(TailType::kFloat));
      if (*type == "str") return MilValue(Bat(TailType::kStr));
      if (*type == "oid") return MilValue(Bat(TailType::kOid));
      return Status::InvalidArgument("unknown BAT type " + *type);
    }
    if (name == "insert") {
      COBRA_RETURN_IF_ERROR(arity(3));
      COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[0], "insert"));
      COBRA_ASSIGN_OR_RETURN(double head, AsNumber(args[1], "insert head"));
      Bat copy(*bat);
      Value tail;
      switch (copy.tail_type()) {
        case TailType::kInt: {
          COBRA_ASSIGN_OR_RETURN(double v, AsNumber(args[2], "insert tail"));
          tail = Value::Int(static_cast<int64_t>(v));
          break;
        }
        case TailType::kFloat: {
          COBRA_ASSIGN_OR_RETURN(double v, AsNumber(args[2], "insert tail"));
          tail = Value::Float(v);
          break;
        }
        case TailType::kStr: {
          const std::string* s = std::get_if<std::string>(&args[2]);
          if (s == nullptr) {
            return Status::InvalidArgument("insert tail must be a string");
          }
          tail = Value::Str(*s);
          break;
        }
        case TailType::kOid: {
          COBRA_ASSIGN_OR_RETURN(double v, AsNumber(args[2], "insert tail"));
          tail = Value::OfOid(static_cast<Oid>(v));
          break;
        }
      }
      COBRA_RETURN_IF_ERROR(copy.Append(static_cast<Oid>(head), tail));
      return MilValue(std::move(copy));
    }
    if (name == "select") {
      const PlanFact* fact = find_fact(name_tok);
      trace::SpanGuard mspan(exec_.trace, exec_.trace_parent, "mil.select");
      if (fact != nullptr) mspan.StaticCard(fact->rows_lo, fact->rows_hi);
      ExecContext sub = exec_;
      sub.trace_parent = mspan.span();
      if (args.size() == 2) {
        COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[0], "select"));
        const std::string* s = std::get_if<std::string>(&args[1]);
        if (s == nullptr) {
          return Status::InvalidArgument(
              "two-argument select expects a string");
        }
        mspan.RowsIn(bat->size());
        // Provable-empty rewrite: the analyzer proved zero rows can match
        // (empty input or dictionary miss), so skip the kernel entirely.
        // Applied only once the kernel's own precondition (a string tail)
        // holds, so a would-be type error is never masked; the kernel's
        // result for such a plan is a fresh empty str BAT, byte-identical
        // to this one.
        if (fact != nullptr && fact->provably_empty &&
            !disable_static_rewrites_ &&
            bat->tail_type() == TailType::kStr) {
          mspan.Detail("rewrite=provably_empty");
          return MilValue(Bat(TailType::kStr));
        }
        if (exec_.shards > 1) {
          const PartitionedBat part = partitioned(*bat);
          COBRA_ASSIGN_OR_RETURN(
              Bat selected,
              ShardedSelectStr(part.View(), *s, sub, exchange_opts()));
          mspan.RowsOut(selected.size());
          return MilValue(std::move(selected));
        }
        COBRA_ASSIGN_OR_RETURN(Bat selected, bat->SelectStr(*s, sub));
        mspan.RowsOut(selected.size());
        return MilValue(std::move(selected));
      }
      COBRA_RETURN_IF_ERROR(arity(3));
      COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[0], "select"));
      COBRA_ASSIGN_OR_RETURN(double lo, AsNumber(args[1], "select lo"));
      COBRA_ASSIGN_OR_RETURN(double hi, AsNumber(args[2], "select hi"));
      mspan.RowsIn(bat->size());
      const bool numeric_tail = bat->tail_type() == TailType::kInt ||
                                bat->tail_type() == TailType::kFloat;
      if (fact != nullptr && fact->provably_empty &&
          !disable_static_rewrites_ && numeric_tail) {
        mspan.Detail("rewrite=provably_empty");
        return MilValue(Bat(bat->tail_type()));
      }
      if (exec_.shards > 1) {
        const PartitionedBat part = partitioned(*bat);
        // Provable-single-shard rewrite: every other slice's zone map
        // misses [lo, hi], so the scatter-gather collapses to one serial
        // kernel call over that slice. The fact's slice boundaries are
        // revalidated against the runtime partition first, so an analysis
        // computed on a different morsel grid merely fails to apply —
        // never misapplies. Byte-identity holds because Slice preserves
        // global heads and every matching row provably lives in slice k.
        if (fact != nullptr && fact->single_shard >= 0 &&
            !disable_static_rewrites_ && numeric_tail &&
            fact->single_shard_of == static_cast<size_t>(exec_.shards)) {
          const std::vector<ShardRange> ranges =
              ShardRanges(bat->size(), static_cast<size_t>(exec_.shards),
                          exec_.MorselRows());
          const size_t k = static_cast<size_t>(fact->single_shard);
          if (k < ranges.size() && ranges[k].begin == fact->shard_begin &&
              ranges[k].end == fact->shard_end) {
            if (mspan.enabled()) {
              mspan.Detail(StrFormat("rewrite=single_shard k=%zu of %zu", k,
                                     ranges.size()));
            }
            const Bat slice = bat->Slice(fact->shard_begin, fact->shard_end);
            COBRA_ASSIGN_OR_RETURN(Bat selected,
                                   slice.SelectRange(lo, hi, sub));
            mspan.RowsOut(selected.size());
            return MilValue(std::move(selected));
          }
        }
        // Zone-map stats let the exchange prune shards that cannot match
        // even when more than one shard survives analysis.
        ExchangeOptions opts = exchange_opts();
        std::vector<ShardStats> stats;
        if (numeric_tail) {
          stats = ComputeShardStats(part.View(), sub);
          opts.scan_stats = &stats;
        }
        COBRA_ASSIGN_OR_RETURN(
            Bat selected, ShardedSelectRange(part.View(), lo, hi, sub, opts));
        mspan.RowsOut(selected.size());
        return MilValue(std::move(selected));
      }
      COBRA_ASSIGN_OR_RETURN(Bat selected, bat->SelectRange(lo, hi, sub));
      mspan.RowsOut(selected.size());
      return MilValue(std::move(selected));
    }
    if (name == "threadcnt") {
      COBRA_RETURN_IF_ERROR(arity(1));
      COBRA_ASSIGN_OR_RETURN(double n, AsNumber(args[0], "threadcnt"));
      if (n < 1.0 || n != std::floor(n) || n > 1024.0) {
        return Status::InvalidArgument(
            StrFormat("threadcnt expects an integer in [1, 1024], got %g", n));
      }
      exec_.threadcnt = static_cast<int>(n);
      return MilValue(n);
    }
    if (name == "shards") {
      COBRA_RETURN_IF_ERROR(arity(1));
      COBRA_ASSIGN_OR_RETURN(double n, AsNumber(args[0], "shards"));
      if (n < 1.0 || n != std::floor(n) || n > 64.0) {
        return Status::InvalidArgument(
            StrFormat("shards expects an integer in [1, 64], got %g", n));
      }
      exec_.shards = static_cast<int>(n);
      return MilValue(n);
    }
    if (name == "join" || name == "semijoin" || name == "diff") {
      COBRA_RETURN_IF_ERROR(arity(2));
      COBRA_ASSIGN_OR_RETURN(const Bat* a, AsBat(args[0], name.c_str()));
      COBRA_ASSIGN_OR_RETURN(const Bat* b, AsBat(args[1], name.c_str()));
      const PlanFact* fact = find_fact(name_tok);
      trace::SpanGuard mspan(exec_.trace, exec_.trace_parent,
                             name == "join"       ? "mil.join"
                             : name == "semijoin" ? "mil.semijoin"
                                                  : "mil.diff");
      if (fact != nullptr) mspan.StaticCard(fact->rows_lo, fact->rows_hi);
      mspan.RowsIn(a->size() + b->size());
      ExecContext sub = exec_;
      sub.trace_parent = mspan.span();
      if (exec_.shards > 1) {
        // Left operand sharded, right operand broadcast to every shard.
        const PartitionedBat part = partitioned(*a);
        Result<Bat> out =
            name == "join"
                ? ShardedJoin(part.View(), *b, sub, exchange_opts())
            : name == "semijoin"
                ? ShardedSemijoin(part.View(), *b, sub, exchange_opts())
                : ShardedDiff(part.View(), *b, sub, exchange_opts());
        COBRA_RETURN_IF_ERROR(out.status());
        mspan.RowsOut(out.value().size());
        return MilValue(std::move(out).value());
      }
      if (name == "join") {
        COBRA_ASSIGN_OR_RETURN(Bat joined, Join(*a, *b, sub));
        mspan.RowsOut(joined.size());
        return MilValue(std::move(joined));
      }
      Bat out = name == "semijoin" ? Semijoin(*a, *b, sub) : Diff(*a, *b, sub);
      mspan.RowsOut(out.size());
      return MilValue(std::move(out));
    }
    if (name == "concat") {
      COBRA_RETURN_IF_ERROR(arity(2));
      COBRA_ASSIGN_OR_RETURN(const Bat* a, AsBat(args[0], "concat"));
      COBRA_ASSIGN_OR_RETURN(const Bat* b, AsBat(args[1], "concat"));
      if (a->tail_type() != b->tail_type()) {
        return Status::InvalidArgument("concat requires matching tail types");
      }
      const PlanFact* fact = find_fact(name_tok);
      trace::SpanGuard mspan(exec_.trace, exec_.trace_parent, "mil.concat");
      if (fact != nullptr) mspan.StaticCard(fact->rows_lo, fact->rows_hi);
      mspan.RowsIn(a->size() + b->size());
      ExecContext sub = exec_;
      sub.trace_parent = mspan.span();
      Bat copy(*a);
      copy.Concat(*b, sub);
      mspan.RowsOut(copy.size());
      return MilValue(std::move(copy));
    }
    if (name == "group") {
      COBRA_RETURN_IF_ERROR(arity(1));
      COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[0], "group"));
      const PlanFact* fact = find_fact(name_tok);
      trace::SpanGuard mspan(exec_.trace, exec_.trace_parent, "mil.group");
      if (fact != nullptr) mspan.StaticCard(fact->rows_lo, fact->rows_hi);
      mspan.RowsIn(bat->size());
      ExecContext sub = exec_;
      sub.trace_parent = mspan.span();
      if (exec_.shards > 1) {
        const PartitionedBat part = partitioned(*bat);
        COBRA_ASSIGN_OR_RETURN(
            Bat ids,
            ShardedGroup(part.View(), nullptr, sub, exchange_opts()));
        mspan.RowsOut(ids.size());
        return MilValue(std::move(ids));
      }
      Bat ids = Group(*bat, nullptr, sub);
      mspan.RowsOut(ids.size());
      return MilValue(std::move(ids));
    }
    if (name == "argmax") {
      COBRA_RETURN_IF_ERROR(arity(1));
      COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[0], "argmax"));
      if (exec_.shards > 1) {
        const PartitionedBat part = partitioned(*bat);
        COBRA_ASSIGN_OR_RETURN(
            size_t pos, ShardedArgMax(part.View(), exec_, exchange_opts()));
        return MilValue(static_cast<double>(pos));
      }
      COBRA_ASSIGN_OR_RETURN(size_t pos, bat->ArgMax(exec_));
      return MilValue(static_cast<double>(pos));
    }
    if (name == "info") {
      COBRA_RETURN_IF_ERROR(arity(1));
      // With a name string, inspect the catalog BAT in place — bat() hands
      // out copies, which start with a fresh (empty) acceleration state.
      const Bat* bat = nullptr;
      std::string label = "<expr>";
      if (const std::string* bat_name = std::get_if<std::string>(&args[0])) {
        COBRA_ASSIGN_OR_RETURN(
            bat, static_cast<const Catalog*>(catalog_)->Get(*bat_name));
        label = *bat_name;
      } else {
        COBRA_ASSIGN_OR_RETURN(bat, AsBat(args[0], "info"));
      }
      const Bat::AccelInfo a = bat->accel_info();
      return MilValue(StrFormat(
          "info(%s): BAT[oid,%s] #%zu version=%llu dict=%zu "
          "tail_index[built=%d fresh=%d builds=%llu probes=%llu] "
          "head_index[built=%d fresh=%d builds=%llu probes=%llu]",
          label.c_str(),
          std::string(TailTypeName(bat->tail_type())).c_str(), bat->size(),
          static_cast<unsigned long long>(a.version), a.dict_entries,
          static_cast<int>(a.tail_index_built),
          static_cast<int>(a.tail_index_fresh),
          static_cast<unsigned long long>(a.tail_builds),
          static_cast<unsigned long long>(a.tail_probes),
          static_cast<int>(a.head_index_built),
          static_cast<int>(a.head_index_fresh),
          static_cast<unsigned long long>(a.head_builds),
          static_cast<unsigned long long>(a.head_probes)));
    }
    if (name == "reverse" || name == "mirror") {
      COBRA_RETURN_IF_ERROR(arity(1));
      COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[0], name.c_str()));
      if (name == "mirror") return MilValue(bat->Mirror());
      COBRA_ASSIGN_OR_RETURN(Bat reversed, bat->Reverse());
      return MilValue(std::move(reversed));
    }
    if (name == "slice") {
      COBRA_RETURN_IF_ERROR(arity(3));
      COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[0], "slice"));
      COBRA_ASSIGN_OR_RETURN(double b, AsNumber(args[1], "slice begin"));
      COBRA_ASSIGN_OR_RETURN(double e, AsNumber(args[2], "slice end"));
      return MilValue(bat->Slice(static_cast<size_t>(b),
                                 static_cast<size_t>(e)));
    }
    if (name == "sum" || name == "max" || name == "min" || name == "count") {
      COBRA_RETURN_IF_ERROR(arity(1));
      COBRA_ASSIGN_OR_RETURN(const Bat* bat, AsBat(args[0], name.c_str()));
      if (name == "count") return MilValue(static_cast<double>(bat->Count()));
      if (exec_.shards > 1) {
        const PartitionedBat part = partitioned(*bat);
        Result<double> v = name == "sum"
                               ? ShardedSum(part.View(), exec_, exchange_opts())
                           : name == "max"
                               ? ShardedMax(part.View(), exec_, exchange_opts())
                               : ShardedMin(part.View(), exec_,
                                            exchange_opts());
        COBRA_RETURN_IF_ERROR(v.status());
        return MilValue(v.value());
      }
      if (name == "sum") {
        COBRA_ASSIGN_OR_RETURN(double v, bat->Sum(exec_));
        return MilValue(v);
      }
      if (name == "max") {
        COBRA_ASSIGN_OR_RETURN(double v, bat->Max(exec_));
        return MilValue(v);
      }
      COBRA_ASSIGN_OR_RETURN(double v, bat->Min(exec_));
      return MilValue(v);
    }
    return Status::InvalidArgument("unknown MIL function " + name);
  };

  for (;;) {
    COBRA_ASSIGN_OR_RETURN(Token tok, next());
    if (tok.kind == Token::Kind::kEnd) break;
    if (tok.kind == Token::Kind::kSemi) continue;

    if (tok.kind == Token::Kind::kWord && tok.text == "VAR") {
      COBRA_ASSIGN_OR_RETURN(Token name, next());
      if (name.kind != Token::Kind::kWord) {
        return Status::InvalidArgument("expected variable name after VAR");
      }
      COBRA_ASSIGN_OR_RETURN(Token assign, next());
      if (assign.kind != Token::Kind::kAssign) {
        return Status::InvalidArgument("expected ':=' after VAR " + name.text);
      }
      COBRA_ASSIGN_OR_RETURN(MilValue value, parse_expr(0));
      variables_.insert_or_assign(name.text, std::move(value));
      continue;
    }
    if (tok.kind == Token::Kind::kWord && tok.text == "PRINT") {
      COBRA_ASSIGN_OR_RETURN(MilValue value, parse_expr(0));
      output += ValueToString(value);
      output += "\n";
      continue;
    }
    if (tok.kind == Token::Kind::kWord && tok.text == "check") {
      COBRA_ASSIGN_OR_RETURN(Token arg, next());
      if (arg.kind != Token::Kind::kString) {
        return Status::InvalidArgument("check expects a quoted MIL script");
      }
      // Strict static analysis of the quoted script against the session's
      // current environment; findings become output, nothing executes.
      MilAnalysisContext actx;
      actx.catalog = catalog_;
      actx.variables = &variables_;
      actx.trace_ready = trace_sink_ != nullptr;
      actx.fs = fs_;
      actx.data_dir_attached = !data_dir_.empty();
      actx.shards = exec_.shards;
      actx.strict = true;
      const DiagnosticList diags = AnalyzeMilScript(arg.text, actx);
      if (diags.empty()) {
        output += "check: ok\n";
      } else {
        output += diags.ToString("mil");
      }
      continue;
    }
    if (tok.kind == Token::Kind::kWord &&
        (tok.text == "save" || tok.text == "load")) {
      if (exec_.shards > 1) {
        // Storage of a sharded deployment is per-shard (ShardedCatalog
        // checkpoints into dir/shard-<k>); a single-directory save/load
        // would silently capture one node's view of a cluster.
        return Status::FailedPrecondition(StrFormat(
            "%s illegal while the session is sharded (shards(%d) in "
            "effect); storage is per-shard — reset with shards(1)",
            tok.text.c_str(), exec_.shards));
      }
      const bool saving = tok.text == "save";
      COBRA_ASSIGN_OR_RETURN(Token arg, next());
      if (arg.kind != Token::Kind::kString) {
        return Status::InvalidArgument(tok.text +
                                       " expects a quoted directory path");
      }
      if (saving) {
        PersistentStore store(fs_, arg.text);
        COBRA_RETURN_IF_ERROR(store.Open());
        COBRA_RETURN_IF_ERROR(store.Checkpoint(*catalog_));
        output += StrFormat(
            "save: %zu bats (lsn %llu)\n", catalog_->Names().size(),
            static_cast<unsigned long long>(store.last_lsn()));
      } else {
        if (!PersistentStore::Exists(*fs_, arg.text)) {
          return Status::NotFound("no persistent store at " + arg.text);
        }
        PersistentStore store(fs_, arg.text);
        COBRA_ASSIGN_OR_RETURN(PersistentStore::RecoveryInfo info,
                               store.Recover(catalog_));
        output += StrFormat(
            "load: %zu bats (lsn %llu)\n", info.bat_count,
            static_cast<unsigned long long>(info.lsn));
      }
      continue;
    }
    if (tok.kind == Token::Kind::kWord && tok.text == "checkpoint") {
      if (exec_.shards > 1) {
        return Status::FailedPrecondition(StrFormat(
            "checkpoint illegal while the session is sharded (shards(%d) in "
            "effect); storage is per-shard — reset with shards(1)",
            exec_.shards));
      }
      if (data_dir_.empty()) {
        return Status::FailedPrecondition(
            "checkpoint requires an attached data directory; construct the "
            "session with one or set COBRA_DATA_DIR");
      }
      if (store_ == nullptr) {
        store_ = std::make_unique<PersistentStore>(fs_, data_dir_);
        COBRA_RETURN_IF_ERROR(store_->Open());
        catalog_->AttachStore(store_.get());
      }
      COBRA_RETURN_IF_ERROR(store_->Checkpoint(*catalog_));
      output += StrFormat(
          "checkpoint: %zu bats (lsn %llu)\n", catalog_->Names().size(),
          static_cast<unsigned long long>(store_->last_lsn()));
      continue;
    }
    if (tok.kind == Token::Kind::kWord && tok.text == "trace") {
      COBRA_ASSIGN_OR_RETURN(Token mode, next());
      if (mode.kind != Token::Kind::kWord) {
        return Status::InvalidArgument("trace expects on|off|dump|json");
      }
      if (mode.text == "on") {
        // A fresh sink per `trace on`: spans accumulate across statements
        // (and Execute calls) until the next `trace on`.
        trace_sink_ = std::make_unique<trace::TraceSink>();
        exec_.trace = trace_sink_.get();
        exec_.trace_parent = nullptr;
      } else if (mode.text == "off") {
        exec_.trace = nullptr;
        exec_.trace_parent = nullptr;
      } else if (mode.text == "dump" || mode.text == "json") {
        if (trace_sink_ == nullptr) {
          return Status::FailedPrecondition(
              "trace has not been enabled; run 'trace on' first");
        }
        if (mode.text == "dump") {
          output += trace_sink_->ToText();
        } else {
          output += trace_sink_->ToJson();
          output += "\n";
        }
      } else {
        return Status::InvalidArgument("trace expects on|off|dump|json, got '" +
                                       mode.text + "'");
      }
      continue;
    }
    // Either an assignment to an existing variable or a bare expression.
    if (tok.kind == Token::Kind::kWord) {
      COBRA_ASSIGN_OR_RETURN(Token after, next());
      if (after.kind == Token::Kind::kAssign) {
        if (variables_.count(tok.text) == 0) {
          return Status::NotFound("assignment to undeclared variable " +
                                  tok.text);
        }
        COBRA_ASSIGN_OR_RETURN(MilValue value, parse_expr(0));
        variables_.insert_or_assign(tok.text, std::move(value));
        continue;
      }
      push_back(after);
    }
    push_back(tok);
    COBRA_ASSIGN_OR_RETURN(MilValue value, parse_expr(0));
    (void)value;
  }
  return output;
}

}  // namespace cobra::kernel
