#include "kernel/persist.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/strings.h"

namespace cobra::kernel {

namespace {

constexpr std::string_view kSnapshotMagic = "CBRASNP1";
constexpr std::string_view kSnapshotTrailer = "CBRAEND1";
constexpr size_t kPageDataSize = 64 * 1024;

std::string SnapshotName(uint64_t gen) {
  return StrFormat("snapshot-%020llu.cobra",
                   static_cast<unsigned long long>(gen));
}

std::string WalName(uint64_t gen) {
  return StrFormat("wal-%020llu.log", static_cast<unsigned long long>(gen));
}

std::string TmpSnapshotName(uint64_t gen) {
  return StrFormat("snap-%020llu.tmp", static_cast<unsigned long long>(gen));
}

std::string TmpWalName(uint64_t gen) {
  return StrFormat("wal-%020llu.tmp", static_cast<unsigned long long>(gen));
}

/// Parses `<prefix><20 digits><suffix>` into the generation number.
bool ParseGen(const std::string& name, std::string_view prefix,
              std::string_view suffix, uint64_t* gen) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t g = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    g = g * 10 + static_cast<uint64_t>(c - '0');
  }
  *gen = g;
  return true;
}

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case TailType::kInt:
      io::PutI64(out, v.AsInt());
      break;
    case TailType::kFloat:
      io::PutF64(out, v.AsFloat());
      break;
    case TailType::kStr:
      io::PutStr(out, v.AsStr());
      break;
    case TailType::kOid:
      io::PutU64(out, v.AsOid());
      break;
  }
}

bool ReadValue(io::ByteReader& r, Value* out) {
  std::string type_byte;
  if (!r.ReadBytes(1, &type_byte)) return false;
  auto raw = static_cast<unsigned char>(type_byte[0]);
  if (raw > static_cast<unsigned char>(TailType::kOid)) return false;
  switch (static_cast<TailType>(raw)) {
    case TailType::kInt: {
      int64_t v = 0;
      if (!r.ReadI64(&v)) return false;
      *out = Value::Int(v);
      return true;
    }
    case TailType::kFloat: {
      double v = 0;
      if (!r.ReadF64(&v)) return false;
      *out = Value::Float(v);
      return true;
    }
    case TailType::kStr: {
      std::string v;
      if (!r.ReadStr(&v)) return false;
      *out = Value::Str(std::move(v));
      return true;
    }
    case TailType::kOid: {
      Oid v = 0;
      if (!r.ReadU64(&v)) return false;
      *out = Value::OfOid(v);
      return true;
    }
  }
  return false;
}

/// Columns of one BAT: tail type byte, row count, heads, typed tails.
/// String tails serialize the dictionary heap in code order followed by the
/// per-row codes; replaying appends through the dictionary reproduces the
/// interning heap byte-identically (codes are assigned in first-occurrence
/// order and rows are never deleted).
void SerializeBat(const Bat& bat, std::string* out) {
  out->push_back(static_cast<char>(bat.tail_type()));
  const size_t rows = bat.size();
  io::PutU64(out, rows);
  for (Oid h : bat.heads()) io::PutU64(out, h);
  switch (bat.tail_type()) {
    case TailType::kInt:
      for (int64_t v : bat.int_tails()) io::PutI64(out, v);
      break;
    case TailType::kFloat:
      for (double v : bat.float_tails()) io::PutF64(out, v);
      break;
    case TailType::kOid:
      for (Oid v : bat.oid_tails()) io::PutU64(out, v);
      break;
    case TailType::kStr: {
      const auto dict_count = static_cast<uint32_t>(bat.DictSize());
      io::PutU32(out, dict_count);
      for (uint32_t code = 0; code < dict_count; ++code) {
        io::PutStr(out, bat.DictAt(code));
      }
      for (uint32_t code : bat.str_codes()) io::PutU32(out, code);
      break;
    }
  }
}

Result<Bat> DeserializeBat(io::ByteReader& r) {
  const Status corrupt(StatusCode::kIoError, "corrupt BAT image");
  std::string type_byte;
  if (!r.ReadBytes(1, &type_byte)) return corrupt;
  auto raw = static_cast<unsigned char>(type_byte[0]);
  if (raw > static_cast<unsigned char>(TailType::kOid)) return corrupt;
  const auto type = static_cast<TailType>(raw);
  uint64_t rows = 0;
  if (!r.ReadU64(&rows)) return corrupt;
  // A row costs at least 5 encoded bytes; reject counts the buffer cannot
  // hold before reserving memory for them.
  if (rows > r.remaining()) return corrupt;
  std::vector<Oid> heads(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    if (!r.ReadU64(&heads[i])) return corrupt;
  }
  Bat bat(type);
  bat.Reserve(rows);
  switch (type) {
    case TailType::kInt:
      for (uint64_t i = 0; i < rows; ++i) {
        int64_t v = 0;
        if (!r.ReadI64(&v)) return corrupt;
        bat.AppendInt(heads[i], v);
      }
      break;
    case TailType::kFloat:
      for (uint64_t i = 0; i < rows; ++i) {
        double v = 0;
        if (!r.ReadF64(&v)) return corrupt;
        bat.AppendFloat(heads[i], v);
      }
      break;
    case TailType::kOid:
      for (uint64_t i = 0; i < rows; ++i) {
        Oid v = 0;
        if (!r.ReadU64(&v)) return corrupt;
        bat.AppendOid(heads[i], v);
      }
      break;
    case TailType::kStr: {
      uint32_t dict_count = 0;
      if (!r.ReadU32(&dict_count)) return corrupt;
      if (dict_count > r.remaining()) return corrupt;
      std::vector<std::string> dict(dict_count);
      for (uint32_t c = 0; c < dict_count; ++c) {
        if (!r.ReadStr(&dict[c])) return corrupt;
      }
      for (uint64_t i = 0; i < rows; ++i) {
        uint32_t code = 0;
        if (!r.ReadU32(&code)) return corrupt;
        if (code >= dict_count) return corrupt;
        bat.AppendStr(heads[i], dict[code]);
      }
      break;
    }
  }
  return bat;
}

/// Splits `logical` into CRC-guarded pages and writes them, one Append per
/// page, then makes the file durable. Page framing (not one big write)
/// bounds the blast radius of a torn sector to one page's checksum.
Status WritePaged(io::Fs* fs, const std::string& path,
                  std::string_view logical) {
  COBRA_ASSIGN_OR_RETURN(std::unique_ptr<io::WritableFile> file,
                         fs->NewWritableFile(path, /*truncate=*/true));
  size_t pos = 0;
  do {
    const size_t len = std::min(kPageDataSize, logical.size() - pos);
    std::string page;
    page.reserve(len + 8);
    io::PutU32(&page, static_cast<uint32_t>(len));
    io::PutU32(&page, io::Crc32(logical.substr(pos, len)));
    page.append(logical.data() + pos, len);
    COBRA_RETURN_IF_ERROR(file->Append(page));
    pos += len;
  } while (pos < logical.size());
  COBRA_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

/// Reassembles the logical stream of a paged file, verifying every page
/// checksum; any framing or CRC violation is an error, never a partial
/// result.
Result<std::string> ReadPaged(const io::Fs& fs, const std::string& path) {
  COBRA_ASSIGN_OR_RETURN(std::string raw, fs.ReadFile(path));
  const Status corrupt(StatusCode::kIoError, "corrupt page in " + path);
  std::string logical;
  io::ByteReader r(raw);
  while (!r.exhausted()) {
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!r.ReadU32(&len) || !r.ReadU32(&crc)) return corrupt;
    if (len > kPageDataSize) return corrupt;
    std::string payload;
    if (!r.ReadBytes(len, &payload)) return corrupt;
    if (io::Crc32(payload) != crc) return corrupt;
    logical.append(payload);
  }
  return logical;
}

struct ParsedSnapshot {
  uint64_t lsn = 0;
  std::string extra;
  std::vector<std::pair<std::string, Bat>> bats;
};

Result<ParsedSnapshot> ParseSnapshot(const std::string& logical) {
  const Status corrupt(StatusCode::kIoError, "corrupt snapshot stream");
  io::ByteReader r(logical);
  std::string magic;
  if (!r.ReadBytes(kSnapshotMagic.size(), &magic) || magic != kSnapshotMagic) {
    return corrupt;
  }
  ParsedSnapshot snap;
  if (!r.ReadU64(&snap.lsn)) return corrupt;
  if (!r.ReadStr(&snap.extra)) return corrupt;
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return corrupt;
  snap.bats.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!r.ReadStr(&name)) return corrupt;
    COBRA_ASSIGN_OR_RETURN(Bat bat, DeserializeBat(r));
    snap.bats.emplace_back(std::move(name), std::move(bat));
  }
  std::string trailer;
  if (!r.ReadBytes(kSnapshotTrailer.size(), &trailer) ||
      trailer != kSnapshotTrailer || !r.exhausted()) {
    return corrupt;
  }
  return snap;
}

struct WalRecord {
  uint64_t lsn = 0;
  uint8_t op = 0;
  std::string operands;
};

/// Scans `data` for the longest valid record prefix: framing and CRC intact
/// and LSNs strictly sequential from `prev_lsn`+1. Returns the byte length
/// of that prefix and appends the records to `out`.
size_t ScanWal(std::string_view data, uint64_t prev_lsn,
               std::vector<WalRecord>* out) {
  size_t valid = 0;
  io::ByteReader r(data);
  while (!r.exhausted()) {
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!r.ReadU32(&len) || !r.ReadU32(&crc)) break;
    std::string payload;
    if (!r.ReadBytes(len, &payload)) break;
    if (io::Crc32(payload) != crc) break;
    io::ByteReader pr(payload);
    WalRecord rec;
    std::string op_byte;
    if (!pr.ReadU64(&rec.lsn) || !pr.ReadBytes(1, &op_byte)) break;
    if (rec.lsn != prev_lsn + 1) break;
    rec.op = static_cast<uint8_t>(op_byte[0]);
    rec.operands.assign(payload, 9, payload.size() - 9);
    prev_lsn = rec.lsn;
    valid += 8 + len;
    if (out != nullptr) out->push_back(std::move(rec));
  }
  return valid;
}

/// Applies one replayed WAL record to the catalog. kEventVersion records
/// only update `event_version` (the model layer re-syncs from it); kModel
/// records are opaque here and are collected into `model_records` for the
/// model layer to re-execute in commit order.
Status ApplyRecord(Catalog* catalog, const WalRecord& rec,
                   uint64_t* event_version,
                   std::vector<std::string>* model_records) {
  const Status corrupt(StatusCode::kIoError, "corrupt wal operands");
  io::ByteReader r(rec.operands);
  switch (static_cast<PersistentStore::WalOp>(rec.op)) {
    case PersistentStore::WalOp::kCreate: {
      std::string name;
      std::string type_byte;
      if (!r.ReadStr(&name) || !r.ReadBytes(1, &type_byte)) return corrupt;
      auto raw = static_cast<unsigned char>(type_byte[0]);
      if (raw > static_cast<unsigned char>(TailType::kOid)) return corrupt;
      return catalog->Create(name, static_cast<TailType>(raw)).status();
    }
    case PersistentStore::WalOp::kAppend: {
      std::string name;
      Oid head = 0;
      Value value;
      if (!r.ReadStr(&name) || !r.ReadU64(&head) || !ReadValue(r, &value)) {
        return corrupt;
      }
      COBRA_ASSIGN_OR_RETURN(Bat * bat, catalog->Get(name));
      return bat->Append(head, value);
    }
    case PersistentStore::WalOp::kDrop: {
      std::string name;
      if (!r.ReadStr(&name)) return corrupt;
      return catalog->Drop(name);
    }
    case PersistentStore::WalOp::kRename: {
      std::string from;
      std::string to;
      if (!r.ReadStr(&from) || !r.ReadStr(&to)) return corrupt;
      return catalog->Rename(from, to);
    }
    case PersistentStore::WalOp::kEventVersion: {
      uint64_t v = 0;
      if (!r.ReadU64(&v)) return corrupt;
      *event_version = v;
      return Status::OK();
    }
    case PersistentStore::WalOp::kPut: {
      std::string name;
      if (!r.ReadStr(&name)) return corrupt;
      COBRA_ASSIGN_OR_RETURN(Bat bat, DeserializeBat(r));
      catalog->Put(name, std::move(bat));
      return Status::OK();
    }
    case PersistentStore::WalOp::kModel:
      if (model_records != nullptr) model_records->push_back(rec.operands);
      return Status::OK();
    case PersistentStore::WalOp::kNoop:
      return Status::OK();
    case PersistentStore::WalOp::kSegmentSeal: {
      std::string name;
      uint64_t end_row = 0;
      if (!r.ReadStr(&name) || !r.ReadU64(&end_row)) return corrupt;
      // Seal boundaries materialize in a sibling BAT so checkpoints carry
      // them for free: head = seal ordinal, tail = end_row.
      const std::string seals = SegmentSealBatName(name);
      Bat* bat = nullptr;
      if (auto existing = catalog->Get(seals); existing.ok()) {
        bat = existing.value();
      } else {
        COBRA_ASSIGN_OR_RETURN(bat, catalog->Create(seals, TailType::kOid));
      }
      bat->AppendOid(static_cast<Oid>(bat->size()), end_row);
      return Status::OK();
    }
  }
  return Status(StatusCode::kIoError,
                StrFormat("unknown wal op %u", rec.op));
}

}  // namespace

std::string SegmentSealBatName(const std::string& bat) {
  return bat + ".@seals";
}

PersistentStore::PersistentStore(io::Fs* fs, std::string dir)
    : fs_(fs), dir_(std::move(dir)) {}

PersistentStore::~PersistentStore() {
  MutexLock lock(mu_);
  if (wal_ != nullptr) (void)wal_->Close();
}

Status PersistentStore::Open() {
  MutexLock lock(mu_);
  return OpenLocked();
}

Status PersistentStore::OpenLocked() {
  if (opened_) return Status::OK();
  COBRA_RETURN_IF_ERROR(fs_->CreateDir(dir_));
  COBRA_ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->ListDir(dir_));
  uint64_t newest_snapshot = 0;
  std::vector<uint64_t> wal_gens;
  for (const std::string& name : names) {
    uint64_t gen = 0;
    if (ParseGen(name, "snapshot-", ".cobra", &gen)) {
      newest_snapshot = std::max(newest_snapshot, gen);
    } else if (ParseGen(name, "wal-", ".log", &gen)) {
      wal_gens.push_back(gen);
    }
  }
  std::sort(wal_gens.begin(), wal_gens.end());
  checkpoint_lsn_ = newest_snapshot;
  wal_gen_ = newest_snapshot;
  uint64_t last_lsn = newest_snapshot;
  // Scan the WAL chain for the newest durable LSN so new records continue
  // the sequence. Files are scanned in generation order; the chain's last
  // valid record wins.
  for (uint64_t gen : wal_gens) {
    if (gen < newest_snapshot) continue;
    auto raw = fs_->ReadFile(dir_ + "/" + WalName(gen));
    if (!raw.ok()) continue;
    std::vector<WalRecord> records;
    ScanWal(raw.value(), gen, &records);
    if (!records.empty()) {
      last_lsn = std::max(last_lsn, records.back().lsn);
      wal_gen_ = gen;
    } else if (gen > wal_gen_) {
      wal_gen_ = gen;
    }
  }
  next_lsn_ = last_lsn + 1;
  wal_.reset();
  wal_records_ = 0;
  broken_ = Status::OK();
  opened_ = true;
  return Status::OK();
}

Status PersistentStore::EnsureWalLocked() {
  if (wal_ != nullptr) return Status::OK();
  const std::string path = dir_ + "/" + WalName(wal_gen_);
  const bool existed = fs_->Exists(path);
  if (existed) {
    // A previous crash can leave a torn record at the tail; appending after
    // it would make every new record unreachable to replay. Repair by
    // rewriting the valid prefix to a temp file and atomically renaming it
    // over the log: an in-place truncate-and-rewrite would destroy every
    // committed record in the file if a crash hit between the truncation
    // and the sync.
    COBRA_ASSIGN_OR_RETURN(std::string raw, fs_->ReadFile(path));
    const size_t valid = ScanWal(raw, wal_gen_, nullptr);
    if (valid < raw.size()) {
      const std::string tmp = dir_ + "/" + TmpWalName(wal_gen_);
      COBRA_ASSIGN_OR_RETURN(std::unique_ptr<io::WritableFile> rewrite,
                             fs_->NewWritableFile(tmp, /*truncate=*/true));
      COBRA_RETURN_IF_ERROR(
          rewrite->Append(std::string_view(raw).substr(0, valid)));
      COBRA_RETURN_IF_ERROR(rewrite->Sync());
      COBRA_RETURN_IF_ERROR(rewrite->Close());
      COBRA_RETURN_IF_ERROR(fs_->Rename(tmp, path));
      COBRA_RETURN_IF_ERROR(fs_->SyncDir(dir_));
    }
  }
  COBRA_ASSIGN_OR_RETURN(wal_, fs_->NewWritableFile(path, /*truncate=*/false));
  if (!existed) {
    // A just-created log file is unreachable after a crash until its
    // directory entry is durable; publish it before the first record's
    // fsync can count as a commit.
    Status status = fs_->SyncDir(dir_);
    if (!status.ok()) {
      wal_.reset();
      return status;
    }
  }
  return Status::OK();
}

Status PersistentStore::AppendRecordLocked(WalOp op,
                                           std::string_view operands) {
  COBRA_RETURN_IF_ERROR(OpenLocked());
  if (!broken_.ok()) {
    return Status(StatusCode::kIoError,
                  "store is fail-stop after: " + broken_.message());
  }
  Status status = EnsureWalLocked();
  if (status.ok()) {
    std::string payload;
    payload.reserve(operands.size() + 9);
    io::PutU64(&payload, next_lsn_);
    payload.push_back(static_cast<char>(op));
    payload.append(operands);
    std::string record;
    record.reserve(payload.size() + 8);
    io::PutU32(&record, static_cast<uint32_t>(payload.size()));
    io::PutU32(&record, io::Crc32(payload));
    record.append(payload);
    status = wal_->Append(record);
    if (status.ok()) status = wal_->Sync();  // the commit point
  }
  if (!status.ok()) {
    // Fail-stop: the WAL tail state is unknown (and a failed fsync must not
    // be retried), so refuse further mutations until reopened/recovered.
    broken_ = status;
    wal_.reset();
    return status;
  }
  ++next_lsn_;
  ++wal_records_;
  return Status::OK();
}

Status PersistentStore::LogCreate(const std::string& name, TailType tail_type) {
  std::string operands;
  io::PutStr(&operands, name);
  operands.push_back(static_cast<char>(tail_type));
  MutexLock lock(mu_);
  return AppendRecordLocked(WalOp::kCreate, operands);
}

Status PersistentStore::LogAppend(const std::string& name, Oid head,
                                  const Value& tail) {
  std::string operands;
  io::PutStr(&operands, name);
  io::PutU64(&operands, head);
  PutValue(&operands, tail);
  MutexLock lock(mu_);
  return AppendRecordLocked(WalOp::kAppend, operands);
}

Status PersistentStore::LogDrop(const std::string& name) {
  std::string operands;
  io::PutStr(&operands, name);
  MutexLock lock(mu_);
  return AppendRecordLocked(WalOp::kDrop, operands);
}

Status PersistentStore::LogRename(const std::string& from,
                                  const std::string& to) {
  std::string operands;
  io::PutStr(&operands, from);
  io::PutStr(&operands, to);
  MutexLock lock(mu_);
  return AppendRecordLocked(WalOp::kRename, operands);
}

Status PersistentStore::LogEventVersion(uint64_t version) {
  std::string operands;
  io::PutU64(&operands, version);
  MutexLock lock(mu_);
  return AppendRecordLocked(WalOp::kEventVersion, operands);
}

Status PersistentStore::LogPut(const std::string& name, const Bat& bat) {
  std::string operands;
  io::PutStr(&operands, name);
  SerializeBat(bat, &operands);
  MutexLock lock(mu_);
  return AppendRecordLocked(WalOp::kPut, operands);
}

Status PersistentStore::LogModel(std::string_view record) {
  MutexLock lock(mu_);
  return AppendRecordLocked(WalOp::kModel, record);
}

Status PersistentStore::LogSegmentSeal(const std::string& name,
                                       uint64_t end_row) {
  std::string operands;
  io::PutStr(&operands, name);
  io::PutU64(&operands, end_row);
  MutexLock lock(mu_);
  return AppendRecordLocked(WalOp::kSegmentSeal, operands);
}

Status PersistentStore::Checkpoint(const Catalog& catalog,
                                   std::string_view extra) {
  MutexLock lock(mu_);
  COBRA_RETURN_IF_ERROR(OpenLocked());
  if (!broken_.ok()) {
    return Status(StatusCode::kIoError,
                  "store is fail-stop after: " + broken_.message());
  }
  uint64_t gen = next_lsn_ - 1;
  // Data-plane-only churn between checkpoints leaves the LSN where it was,
  // which would reuse the previous snapshot's filename: the rename would
  // replace that generation in place and pruning would collapse the
  // two-generation fallback to one file. Burn an LSN so every snapshot gets
  // a fresh generation.
  if (gen == checkpoint_lsn_ &&
      fs_->Exists(dir_ + "/" + SnapshotName(gen))) {
    COBRA_RETURN_IF_ERROR(AppendRecordLocked(WalOp::kNoop, ""));
    gen = next_lsn_ - 1;
  }

  // Build the logical snapshot stream. Reads the catalog through its locked
  // API while holding the store lock; Catalog::Stats reads store stats
  // without its lock held, so this order never inverts.
  std::string logical;
  logical.append(kSnapshotMagic);
  io::PutU64(&logical, gen);
  io::PutStr(&logical, extra);
  const std::vector<std::string> names = catalog.Names();
  io::PutU32(&logical, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    COBRA_ASSIGN_OR_RETURN(const Bat* bat, catalog.Get(name));
    io::PutStr(&logical, name);
    SerializeBat(*bat, &logical);
  }
  logical.append(kSnapshotTrailer);

  // Temp-write, sync, then atomic rename: until the rename lands the
  // previous snapshot stays authoritative, so a crash anywhere in here
  // loses nothing. A failed checkpoint is NOT fail-stop — disk state is
  // untouched and WAL logging can continue.
  const std::string tmp = dir_ + "/" + TmpSnapshotName(gen);
  COBRA_RETURN_IF_ERROR(WritePaged(fs_, tmp, logical));
  COBRA_RETURN_IF_ERROR(fs_->Rename(tmp, dir_ + "/" + SnapshotName(gen)));
  // The rename is only crash-durable once the directory entry is journaled.
  COBRA_RETURN_IF_ERROR(fs_->SyncDir(dir_));

  // The snapshot is durable: rotate the WAL and prune old generations,
  // always retaining the previous snapshot (and the WAL chain from it) as a
  // fallback should the new file turn out unreadable.
  if (wal_ != nullptr) {
    (void)wal_->Close();
    wal_.reset();
  }
  const uint64_t previous = checkpoint_lsn_;
  checkpoint_lsn_ = gen;
  wal_gen_ = gen;
  auto names_or = fs_->ListDir(dir_);
  if (names_or.ok()) {
    for (const std::string& name : names_or.value()) {
      uint64_t g = 0;
      if (ParseGen(name, "snapshot-", ".cobra", &g)) {
        if (g != previous && g != gen) (void)fs_->DeleteFile(dir_ + "/" + name);
      } else if (ParseGen(name, "wal-", ".log", &g)) {
        if (g < previous) (void)fs_->DeleteFile(dir_ + "/" + name);
      } else if (ParseGen(name, "snap-", ".tmp", &g) ||
                 ParseGen(name, "wal-", ".tmp", &g)) {
        // Leftover from a checkpoint or WAL repair that crashed before its
        // rename.
        (void)fs_->DeleteFile(dir_ + "/" + name);
      }
    }
    // Pruning is best effort, and so is making the unlinks durable: a
    // resurrected old generation is ignored by recovery anyway.
    (void)fs_->SyncDir(dir_);
  }
  return Status::OK();
}

Result<PersistentStore::RecoveryInfo> PersistentStore::Recover(
    Catalog* catalog) {
  MutexLock lock(mu_);
  if (!fs_->Exists(dir_)) {
    return Status::NotFound("no persistent store at " + dir_);
  }
  COBRA_ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->ListDir(dir_));
  std::vector<uint64_t> snapshot_gens;
  std::vector<uint64_t> wal_gens;
  for (const std::string& name : names) {
    uint64_t gen = 0;
    if (ParseGen(name, "snapshot-", ".cobra", &gen)) {
      snapshot_gens.push_back(gen);
    } else if (ParseGen(name, "wal-", ".log", &gen)) {
      wal_gens.push_back(gen);
    }
  }
  if (snapshot_gens.empty() && wal_gens.empty()) {
    return Status::NotFound("no persistent store at " + dir_);
  }
  std::sort(snapshot_gens.rbegin(), snapshot_gens.rend());
  std::sort(wal_gens.begin(), wal_gens.end());

  // Newest snapshot that actually parses wins; provably corrupt newer ones
  // are deleted (best effort) so a later recovery cannot regress to them.
  ParsedSnapshot base;
  bool have_base = false;
  bool fell_back = false;
  uint64_t base_gen = 0;
  for (size_t i = 0; i < snapshot_gens.size(); ++i) {
    const std::string path = dir_ + "/" + SnapshotName(snapshot_gens[i]);
    auto logical = ReadPaged(*fs_, path);
    if (logical.ok()) {
      auto parsed = ParseSnapshot(logical.value());
      if (parsed.ok()) {
        base = std::move(parsed).value();
        base_gen = snapshot_gens[i];
        have_base = true;
        fell_back = i > 0;
        break;
      }
    }
    (void)fs_->DeleteFile(path);
  }
  if (!have_base) {
    if (!snapshot_gens.empty() || (!wal_gens.empty() && wal_gens.front() > 0)) {
      return Status(StatusCode::kIoError,
                    "no valid snapshot in " + dir_ +
                        " and the WAL chain does not reach back to genesis");
    }
    base_gen = 0;  // empty catalog + full replay of wal-0
  }

  // Rebuild the catalog in place: recovered state replaces whatever the
  // caller had. Acceleration state is not restored — indexes re-accrete
  // lazily, exactly as documented.
  for (const std::string& name : catalog->Names()) {
    COBRA_RETURN_IF_ERROR(catalog->Drop(name));
  }
  RecoveryInfo info;
  info.used_fallback_snapshot = fell_back;
  info.extra = base.extra;
  for (auto& [name, bat] : base.bats) {
    catalog->Put(name, std::move(bat));
  }

  // Replay the WAL chain from the snapshot forward. Records must advance
  // the LSN strictly sequentially; the first checksum or sequence break
  // ends replay — everything before it was committed, everything after it
  // never was.
  uint64_t applied_lsn = have_base ? base.lsn : 0;
  uint64_t active_wal_gen = base_gen;
  for (uint64_t gen : wal_gens) {
    if (gen < base_gen) continue;
    if (gen > applied_lsn) break;  // chain gap: later files are unreachable
    auto raw = fs_->ReadFile(dir_ + "/" + WalName(gen));
    if (!raw.ok()) break;
    std::vector<WalRecord> records;
    ScanWal(raw.value(), gen, &records);
    active_wal_gen = gen;
    bool stop = false;
    for (const WalRecord& rec : records) {
      if (rec.lsn <= applied_lsn) continue;  // already in the snapshot
      if (rec.lsn != applied_lsn + 1) {
        stop = true;
        break;
      }
      if (!ApplyRecord(catalog, rec, &info.event_version, &info.model_records)
               .ok()) {
        stop = true;
        break;
      }
      applied_lsn = rec.lsn;
      ++info.wal_records_applied;
    }
    if (stop) break;
  }

  info.lsn = applied_lsn;
  info.bat_count = catalog->Names().size();

  checkpoint_lsn_ = base_gen;
  wal_gen_ = active_wal_gen;
  next_lsn_ = applied_lsn + 1;
  wal_.reset();
  wal_records_ = 0;
  broken_ = Status::OK();
  opened_ = true;
  return info;
}

PersistentStore::DiskStats PersistentStore::Stats() const {
  MutexLock lock(mu_);
  DiskStats stats;
  stats.checkpoint_lsn = checkpoint_lsn_;
  stats.last_lsn = next_lsn_ - 1;
  stats.wal_records = wal_records_;
  auto names = fs_->ListDir(dir_);
  if (!names.ok()) return stats;
  for (const std::string& name : names.value()) {
    uint64_t gen = 0;
    const bool is_snapshot = ParseGen(name, "snapshot-", ".cobra", &gen);
    const bool is_wal = !is_snapshot && ParseGen(name, "wal-", ".log", &gen);
    if (!is_snapshot && !is_wal) continue;
    stats.snapshot_files += is_snapshot ? 1 : 0;
    stats.wal_files += is_wal ? 1 : 0;
    auto size = fs_->FileSize(dir_ + "/" + name);
    if (size.ok()) stats.on_disk_bytes += size.value();
  }
  return stats;
}

uint64_t PersistentStore::last_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_ - 1;
}

bool PersistentStore::Exists(const io::Fs& fs, const std::string& dir) {
  auto names = fs.ListDir(dir);
  if (!names.ok()) return false;
  for (const std::string& name : names.value()) {
    uint64_t gen = 0;
    if (ParseGen(name, "snapshot-", ".cobra", &gen) ||
        ParseGen(name, "wal-", ".log", &gen)) {
      return true;
    }
  }
  return false;
}

std::string PersistentStore::DumpCatalog(const Catalog& catalog) {
  std::string out;
  for (const std::string& name : catalog.Names()) {
    auto bat_or = catalog.Get(name);
    if (!bat_or.ok()) continue;  // racing drop; dumps are single-threaded
    const Bat& bat = *bat_or.value();
    out += StrFormat("bat %s type=%s rows=%llu\n", name.c_str(),
                     std::string(TailTypeName(bat.tail_type())).c_str(),
                     static_cast<unsigned long long>(bat.size()));
    if (bat.tail_type() == TailType::kStr) {
      out += StrFormat(" dict %llu:",
                       static_cast<unsigned long long>(bat.DictSize()));
      for (uint32_t code = 0; code < bat.DictSize(); ++code) {
        out += StrFormat(" %u=\"%s\"", code, bat.DictAt(code).c_str());
      }
      out += "\n";
    }
    for (size_t i = 0; i < bat.size(); ++i) {
      out += StrFormat(" %llu:", static_cast<unsigned long long>(bat.HeadAt(i)));
      switch (bat.tail_type()) {
        case TailType::kInt:
          out += StrFormat("%lld", static_cast<long long>(bat.IntAt(i)));
          break;
        case TailType::kFloat: {
          // Bit pattern, so -0.0 vs 0.0 and NaN payloads are distinguished.
          uint64_t bits = 0;
          double v = bat.FloatAt(i);
          std::memcpy(&bits, &v, sizeof(bits));
          out += StrFormat("f%016llx", static_cast<unsigned long long>(bits));
          break;
        }
        case TailType::kStr:
          out += StrFormat("s\"%s\"", bat.StrAt(i).c_str());
          break;
        case TailType::kOid:
          out += StrFormat("o%llu",
                           static_cast<unsigned long long>(bat.OidAt(i)));
          break;
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace cobra::kernel
