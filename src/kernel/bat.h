#ifndef COBRA_KERNEL_BAT_H_
#define COBRA_KERNEL_BAT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "base/status.h"
#include "kernel/exec_context.h"

namespace cobra::kernel {

/// Object identifier — the head column type of every BAT, exactly as in
/// Monet's binary relational model.
using Oid = uint64_t;

/// Tail column type of a BAT.
enum class TailType { kInt, kFloat, kStr, kOid };

std::string_view TailTypeName(TailType t);

/// A tail value. Oid tails are carried as the distinct `Oid`-typed
/// alternative of the variant (index 3).
class Value {
 public:
  Value() : data_(int64_t{0}), type_(TailType::kInt) {}
  static Value Int(int64_t v) { return Value(v, TailType::kInt); }
  static Value Float(double v) { return Value(v, TailType::kFloat); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value OfOid(Oid v) { return Value(v, TailType::kOid); }

  TailType type() const { return type_; }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsFloat() const { return std::get<double>(data_); }
  const std::string& AsStr() const { return std::get<std::string>(data_); }
  Oid AsOid() const { return std::get<Oid>(data_); }

  /// Numeric view: ints and floats convert; str/oid values are a typed
  /// InvalidArgument error (never silently 0).
  [[nodiscard]] Result<double> Numeric() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.type_ == b.type_ && a.data_ == b.data_;
  }

 private:
  Value(int64_t v, TailType t) : data_(v), type_(t) {}
  Value(double v, TailType t) : data_(v), type_(t) {}
  Value(Oid v, TailType t) : data_(v), type_(t) {}
  explicit Value(std::string v)
      : data_(std::move(v)), type_(TailType::kStr) {}

  std::variant<int64_t, double, std::string, Oid> data_;
  TailType type_;
};

/// A Binary Association Table: a sequence of (head oid, tail value) pairs
/// with a fixed tail type. This is the Monet physical data model the paper
/// builds on (`BAT[oid,dbl] f1` in Fig. 4); all metadata in the Cobra layer
/// is decomposed into BATs.
///
/// Tails are stored column-wise in a typed vector, so scans touch only the
/// bytes they need (main-memory column execution). String tails are
/// dictionary-encoded: distinct strings live once in a per-BAT interning
/// heap and the column holds `uint32_t` codes, so string equality is a code
/// compare and highly repetitive columns (F1 annotations, event types)
/// shrink to four bytes per row.
///
/// BATs are *self-organizing*, as in Monet: equality probes accrete
/// persistent hash indexes (tail-value index for `SelectEq`/`SelectStr`,
/// head index for `Join`/`Semijoin`/`Diff` build sides) that are built
/// lazily on first probe and reused until a mutation bumps the BAT's
/// version counter, after which the next probe rebuilds them transparently.
/// Concurrent read-only probes on a shared BAT are thread-safe (index
/// builds are serialized internally); mutation requires exclusive access,
/// like the standard containers.
class Bat {
 public:
  /// Rows below this never auto-build an index on probe (scan is cheaper);
  /// once a BAT has accreted an index it is kept fresh regardless of size.
  static constexpr size_t kAutoIndexMinRows = 128;

  /// A persistent equality-probe accelerator: key -> ascending positions.
  /// Keys are the 64-bit canonical encoding of the column value (see
  /// `TailKeyAt`). Exposed for the kernel operators, `info()` and tests;
  /// treat as read-only.
  struct HashIndex {
    uint64_t built_version = 0;
    /// Rows [0, built_rows) are reflected in `map`. Equal to the BAT size at
    /// build time; incremental append maintenance advances it without a
    /// rebuild. An index is only served when built_version matches, so a
    /// fresh index always has built_rows == size().
    uint64_t built_rows = 0;
    std::unordered_map<uint64_t, std::vector<uint32_t>> map;
  };

  /// Snapshot of the acceleration state (surfaced by MIL `info()`).
  struct AccelInfo {
    uint64_t version = 0;
    bool tail_index_built = false;
    bool tail_index_fresh = false;
    bool head_index_built = false;
    bool head_index_fresh = false;
    uint64_t tail_builds = 0;
    uint64_t tail_probes = 0;
    uint64_t head_builds = 0;
    uint64_t head_probes = 0;
    /// In-place index extensions performed by append maintenance (streaming
    /// mode): each one kept an existing index fresh WITHOUT a rebuild.
    uint64_t tail_extends = 0;
    uint64_t head_extends = 0;
    /// Rows covered by the current indexes (0 when absent).
    size_t tail_indexed_rows = 0;
    size_t head_indexed_rows = 0;
    size_t dict_entries = 0;  // distinct strings (kStr tails only)
  };

  explicit Bat(TailType tail_type) : tail_type_(tail_type) {}
  ~Bat();

  /// Copies carry the columns and dictionary but start with a fresh
  /// acceleration state (indexes rebuild lazily in the copy).
  Bat(const Bat& other);
  Bat& operator=(const Bat& other);
  Bat(Bat&& other) noexcept;
  Bat& operator=(Bat&& other) noexcept;

  TailType tail_type() const { return tail_type_; }
  size_t size() const { return head_.size(); }
  bool empty() const { return head_.empty(); }

  /// Appends a pair; the value type must match the tail type.
  Status Append(Oid head, const Value& tail);
  /// Typed fast-path appends (no variant).
  void AppendInt(Oid head, int64_t v);
  void AppendFloat(Oid head, double v);
  void AppendStr(Oid head, std::string v);
  void AppendOid(Oid head, Oid v);

  /// Appends (head, tail of `src` at position `i`); `src` must have the same
  /// tail type. No variant round-trip.
  void AppendRowFrom(Oid head, const Bat& src, size_t i);

  /// Pre-sizes the columns for `n` pairs.
  void Reserve(size_t n);

  /// Appends every pair of `other` (same tail type) — bulk column concat,
  /// used to merge per-morsel operator outputs in morsel order. String
  /// codes are remapped through this BAT's dictionary. The context form is
  /// identical but records a trace span when a sink is installed.
  void Concat(const Bat& other);
  void Concat(const Bat& other, const ExecContext& ctx);

  /// Adopts pre-built head/tail columns (must be the same length) as a
  /// BAT[oid, oid].
  static Bat FromOidColumns(std::vector<Oid> heads, std::vector<Oid> tails);

  Oid HeadAt(size_t i) const { return head_[i]; }
  Value TailAt(size_t i) const;
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double FloatAt(size_t i) const { return floats_[i]; }
  const std::string& StrAt(size_t i) const {
    return *dict_order_[str_codes_[i]];
  }
  Oid OidAt(size_t i) const { return oids_[i]; }

  const std::vector<Oid>& heads() const { return head_; }
  const std::vector<double>& float_tails() const { return floats_; }
  const std::vector<int64_t>& int_tails() const { return ints_; }
  const std::vector<Oid>& oid_tails() const { return oids_; }
  /// Per-row dictionary codes of a string tail (parallel to heads()).
  const std::vector<uint32_t>& str_codes() const { return str_codes_; }
  /// The interned string for a dictionary code (codes are dense, insertion
  /// ordered: 0 .. DictSize()-1). Used by the persistence layer to walk the
  /// dictionary heap in its canonical order.
  const std::string& DictAt(uint32_t code) const { return *dict_order_[code]; }

  // -- Acceleration layer ---------------------------------------------------

  /// Mutation counter; indexes built at an older version rebuild on probe.
  uint64_t version() const { return version_; }
  /// Distinct strings in the dictionary (0 for non-string tails).
  size_t DictSize() const { return dict_order_.size(); }
  /// Forces an index build now (benchmarks/tests; probes do this lazily).
  void BuildTailIndex() const { (void)TailIndex(/*force=*/true); }
  void BuildHeadIndex() const { (void)HeadIndex(/*force=*/true); }
  AccelInfo accel_info() const;

  /// Current tail/head hash index, building per policy: always when
  /// `force`, else when one already exists (kept fresh) or the BAT has at
  /// least kAutoIndexMinRows rows. Returns null when the policy declines
  /// (callers fall back to a scan). Thread-safe.
  std::shared_ptr<const HashIndex> TailIndex(bool force) const;
  std::shared_ptr<const HashIndex> HeadIndex(bool force) const;

  /// Streaming append maintenance (default OFF): when enabled, every append
  /// extends any existing hash index in place — new rows are added to the
  /// published map and its built_version/built_rows are advanced — instead
  /// of invalidating it for a full rebuild on the next probe. The default
  /// mode keeps the classic Monet invalidate-on-mutation behavior
  /// unchanged. Like all mutation state, toggle only with exclusive access.
  ///
  /// A shared_ptr still held by a reader (a stashed probe snapshot) is
  /// never mutated: maintenance clones it, extends the clone, and publishes
  /// that — the snapshot keeps describing exactly the rows it was taken
  /// over.
  bool append_maintenance() const { return append_maintenance_; }
  void set_append_maintenance(bool on) { append_maintenance_ = on; }

  /// TEST ONLY — the seeded defect seam for the streaming differential
  /// harness: stamps any existing indexes as fresh (built_version/built_rows
  /// advanced to current) WITHOUT adding the missing rows to the map. Probes
  /// then silently miss every row appended since the last real build — the
  /// exact latent staleness bug incremental maintenance must not have. Never
  /// call outside a harness that asserts the corruption is caught.
  void unsafe_stamp_indexes_fresh();

  /// Rows whose tail equals `v`: probes the current tail index when one is
  /// fresh, otherwise counts by scan; never builds or mutates acceleration
  /// state (safe as a lightweight gating probe). Type-checked like SelectEq.
  Result<uint64_t> CountEq(const Value& v) const;

  /// Canonical 64-bit key of the tail at `i` (dictionary code for strings,
  /// bit pattern for numerics with -0.0 normalized to 0.0).
  uint64_t TailKeyAt(size_t i) const;

  // -- MIL-style unary operators ------------------------------------------
  //
  // Each hot operator has a serial form and an ExecContext form. The
  // context form runs morsel-parallel on the shared kernel pool when
  // ctx.UseParallel(size()) holds, and is equivalence-tested to produce
  // byte-identical output (values and order) at every threadcnt. Equality
  // selects probe the persistent tail index when the policy allows
  // (ctx.auto_index gates it on the context forms). When the context
  // carries a trace sink (ctx.trace), the context forms record a
  // trace::Span — rows in/out, morsel count, index probe/build/invalidation
  // events, dictionary hits — and are strict no-ops on that path otherwise.

  /// select(v): pairs whose tail equals v.
  Result<Bat> SelectEq(const Value& v) const;
  Result<Bat> SelectEq(const Value& v, const ExecContext& ctx) const;
  /// select(lo, hi): pairs with numeric tail in [lo, hi] (int/float tails).
  Result<Bat> SelectRange(double lo, double hi) const;
  Result<Bat> SelectRange(double lo, double hi, const ExecContext& ctx) const;
  /// select over string tails matching exactly `s`.
  Result<Bat> SelectStr(const std::string& s) const;
  Result<Bat> SelectStr(const std::string& s, const ExecContext& ctx) const;
  /// reverse(): swaps head and tail; tail must be oid-typed.
  Result<Bat> Reverse() const;
  /// mirror(): (head, head) as oid tail.
  Bat Mirror() const;
  /// slice of [begin, end) positions.
  Bat Slice(size_t begin, size_t end) const;

  // -- Aggregates ----------------------------------------------------------

  /// Numeric aggregates over int/float tails. The ExecContext forms reduce
  /// per fixed-size morsel and combine partials in morsel order, so the
  /// floating-point result is identical at every threadcnt (and to the
  /// serial form whenever the input fits one morsel). Min/Max/ArgMax skip
  /// NaN tails (a NaN is the result only when every tail is NaN), which
  /// keeps the serial and morsel scans equivalent for any NaN placement;
  /// Sum propagates NaN as IEEE addition does.
  Result<double> Sum() const;
  Result<double> Sum(const ExecContext& ctx) const;
  Result<double> Max() const;
  Result<double> Max(const ExecContext& ctx) const;
  Result<double> Min() const;
  Result<double> Min(const ExecContext& ctx) const;
  size_t Count() const { return size(); }

  /// Position of the maximum numeric tail; error when empty/non-numeric.
  /// Ties resolve to the lowest position on both paths.
  Result<size_t> ArgMax() const;
  Result<size_t> ArgMax(const ExecContext& ctx) const;

 private:
  struct Accel;

  /// Lazily-created shared acceleration state (atomic CAS publication, so
  /// concurrent const probes race safely on first touch).
  Accel& accel() const;
  /// Common select-equal body; `ctx` may be null (serial form). `op` names
  /// the span recorded when the context carries a trace sink.
  Result<Bat> SelectEqImpl(const Value& v, const ExecContext* ctx,
                           const char* op) const;
  /// Interns `v`, returning its dictionary code.
  uint32_t InternStr(std::string v);
  /// Looks up a string's code without interning; false when absent (the
  /// string provably matches no row).
  bool LookupStrCode(const std::string& s, uint32_t* code) const;
  /// Emits (head, probe value) for every position in `hits` (ascending) —
  /// the indexed SelectEq/SelectStr output, byte-identical to the scan.
  Bat EmitEqHits(const std::vector<uint32_t>& hits, const Value& v) const;
  void Bump() { ++version_; }
  /// Post-append hook: rows [old_rows, size()) were just appended. In
  /// maintenance mode extends existing indexes in place (MaintainAppendSlow);
  /// a disabled hook costs one predictable branch.
  void MaintainAppend(size_t old_rows) {
    if (append_maintenance_) MaintainAppendSlow(old_rows);
  }
  void MaintainAppendSlow(size_t old_rows);

  TailType tail_type_;
  std::vector<Oid> head_;
  std::vector<int64_t> ints_;
  std::vector<double> floats_;
  std::vector<Oid> oids_;
  // Dictionary-encoded string column: per-row codes plus the interning
  // heap. `dict_` owns the strings (node-stable keys); `dict_order_` maps
  // code -> key in insertion order.
  std::vector<uint32_t> str_codes_;
  std::unordered_map<std::string, uint32_t> dict_;
  std::vector<const std::string*> dict_order_;

  // Bumped only by mutations, which require exclusive access to the BAT
  // (the container contract above); concurrent const probes read it under
  // Accel::mu, whose critical sections order the reads against the bump
  // made by the last pre-publication mutation.
  uint64_t version_ = 0;
  /// Streaming mode flag (see set_append_maintenance). Mutation-path state:
  /// read on every append, so it follows the exclusive-access contract.
  bool append_maintenance_ = false;
  mutable std::atomic<Accel*> accel_{nullptr};
};

// -- Binary operators -------------------------------------------------------

/// join(a, b): for every (h, t) in `a` with oid tail and (t, v) in `b`,
/// emits (h, v). Hash join probing `b`'s persistent head index (built on
/// first use, reused across calls). The output is ordered by position in
/// `a`, with a row's matches emitted in `b` order.
Result<Bat> Join(const Bat& a, const Bat& b);

/// Parallel join with the same output as the serial form: probe morsels
/// over `a` run in parallel against the shared head index and the
/// per-morsel outputs merge in morsel order. With ctx.auto_index false the
/// pre-index partitioned build/probe plan runs instead (no state is left
/// on `b`).
Result<Bat> Join(const Bat& a, const Bat& b, const ExecContext& ctx);

/// semijoin(a, b): pairs of `a` whose head occurs as a head in `b`.
Bat Semijoin(const Bat& a, const Bat& b);
Bat Semijoin(const Bat& a, const Bat& b, const ExecContext& ctx);

/// kdiff(a, b): pairs of `a` whose head does NOT occur as a head in `b`.
Bat Diff(const Bat& a, const Bat& b);
Bat Diff(const Bat& a, const Bat& b, const ExecContext& ctx);

/// group(a): maps equal tails to a dense group id; returns BAT[oid, oid]
/// (original head -> group id) and fills `representatives` with one input
/// position per group. Group ids are dense in first-occurrence order.
/// Grouping hashes the canonical 64-bit tail keys — dictionary codes for
/// strings — never the string bytes.
Bat Group(const Bat& a, std::vector<size_t>* representatives);

/// Parallel group with identical output: per-morsel local tables are built
/// in parallel, merged serially in morsel order into the global dense-id
/// table (preserving first-occurrence numbering), then rows are re-mapped in
/// parallel.
Bat Group(const Bat& a, std::vector<size_t>* representatives,
          const ExecContext& ctx);

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_BAT_H_
