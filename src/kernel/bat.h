#ifndef COBRA_KERNEL_BAT_H_
#define COBRA_KERNEL_BAT_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "base/status.h"
#include "kernel/exec_context.h"

namespace cobra::kernel {

/// Object identifier — the head column type of every BAT, exactly as in
/// Monet's binary relational model.
using Oid = uint64_t;

/// Tail column type of a BAT.
enum class TailType { kInt, kFloat, kStr, kOid };

std::string_view TailTypeName(TailType t);

/// A tail value. Oid tails are carried as the distinct `Oid`-typed
/// alternative of the variant (index 3).
class Value {
 public:
  Value() : data_(int64_t{0}), type_(TailType::kInt) {}
  static Value Int(int64_t v) { return Value(v, TailType::kInt); }
  static Value Float(double v) { return Value(v, TailType::kFloat); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value OfOid(Oid v) { return Value(v, TailType::kOid); }

  TailType type() const { return type_; }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsFloat() const { return std::get<double>(data_); }
  const std::string& AsStr() const { return std::get<std::string>(data_); }
  Oid AsOid() const { return std::get<Oid>(data_); }

  /// Loose numeric view: ints and floats both convert; others are 0.
  double Numeric() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.type_ == b.type_ && a.data_ == b.data_;
  }

 private:
  Value(int64_t v, TailType t) : data_(v), type_(t) {}
  Value(double v, TailType t) : data_(v), type_(t) {}
  Value(Oid v, TailType t) : data_(v), type_(t) {}
  explicit Value(std::string v)
      : data_(std::move(v)), type_(TailType::kStr) {}

  std::variant<int64_t, double, std::string, Oid> data_;
  TailType type_;
};

/// A Binary Association Table: a sequence of (head oid, tail value) pairs
/// with a fixed tail type. This is the Monet physical data model the paper
/// builds on (`BAT[oid,dbl] f1` in Fig. 4); all metadata in the Cobra layer
/// is decomposed into BATs.
///
/// Tails are stored column-wise in a typed vector, so scans touch only the
/// bytes they need (main-memory column execution).
class Bat {
 public:
  explicit Bat(TailType tail_type) : tail_type_(tail_type) {}

  TailType tail_type() const { return tail_type_; }
  size_t size() const { return head_.size(); }
  bool empty() const { return head_.empty(); }

  /// Appends a pair; the value type must match the tail type.
  Status Append(Oid head, const Value& tail);
  /// Typed fast-path appends (no variant).
  void AppendInt(Oid head, int64_t v);
  void AppendFloat(Oid head, double v);
  void AppendStr(Oid head, std::string v);
  void AppendOid(Oid head, Oid v);

  /// Appends (head, tail of `src` at position `i`); `src` must have the same
  /// tail type. No variant round-trip.
  void AppendRowFrom(Oid head, const Bat& src, size_t i);

  /// Pre-sizes the columns for `n` pairs.
  void Reserve(size_t n);

  /// Appends every pair of `other` (same tail type) — bulk column concat,
  /// used to merge per-morsel operator outputs in morsel order.
  void Concat(const Bat& other);

  /// Adopts pre-built head/tail columns (must be the same length) as a
  /// BAT[oid, oid].
  static Bat FromOidColumns(std::vector<Oid> heads, std::vector<Oid> tails);

  Oid HeadAt(size_t i) const { return head_[i]; }
  Value TailAt(size_t i) const;
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double FloatAt(size_t i) const { return floats_[i]; }
  const std::string& StrAt(size_t i) const { return strs_[i]; }
  Oid OidAt(size_t i) const { return oids_[i]; }

  const std::vector<Oid>& heads() const { return head_; }
  const std::vector<double>& float_tails() const { return floats_; }
  const std::vector<int64_t>& int_tails() const { return ints_; }

  // -- MIL-style unary operators ------------------------------------------
  //
  // Each hot operator has a serial form and an ExecContext form. The
  // context form runs morsel-parallel on the shared kernel pool when
  // ctx.UseParallel(size()) holds, and is equivalence-tested to produce
  // byte-identical output (values and order) at every threadcnt.

  /// select(v): pairs whose tail equals v.
  Result<Bat> SelectEq(const Value& v) const;
  Result<Bat> SelectEq(const Value& v, const ExecContext& ctx) const;
  /// select(lo, hi): pairs with numeric tail in [lo, hi] (int/float tails).
  Result<Bat> SelectRange(double lo, double hi) const;
  Result<Bat> SelectRange(double lo, double hi, const ExecContext& ctx) const;
  /// select over string tails matching exactly `s`.
  Result<Bat> SelectStr(const std::string& s) const;
  Result<Bat> SelectStr(const std::string& s, const ExecContext& ctx) const;
  /// reverse(): swaps head and tail; tail must be oid-typed.
  Result<Bat> Reverse() const;
  /// mirror(): (head, head) as oid tail.
  Bat Mirror() const;
  /// slice of [begin, end) positions.
  Bat Slice(size_t begin, size_t end) const;

  // -- Aggregates ----------------------------------------------------------

  /// Numeric aggregates over int/float tails. The ExecContext forms reduce
  /// per fixed-size morsel and combine partials in morsel order, so the
  /// floating-point result is identical at every threadcnt (and to the
  /// serial form whenever the input fits one morsel).
  Result<double> Sum() const;
  Result<double> Sum(const ExecContext& ctx) const;
  Result<double> Max() const;
  Result<double> Max(const ExecContext& ctx) const;
  Result<double> Min() const;
  Result<double> Min(const ExecContext& ctx) const;
  size_t Count() const { return size(); }

  /// Position of the maximum numeric tail; error when empty/non-numeric.
  /// Ties resolve to the lowest position on both paths.
  Result<size_t> ArgMax() const;
  Result<size_t> ArgMax(const ExecContext& ctx) const;

 private:
  TailType tail_type_;
  std::vector<Oid> head_;
  std::vector<int64_t> ints_;
  std::vector<double> floats_;
  std::vector<std::string> strs_;
  std::vector<Oid> oids_;
};

// -- Binary operators -------------------------------------------------------

/// join(a, b): for every (h, t) in `a` with oid tail and (t, v) in `b`,
/// emits (h, v). Hash join on b's head. The output is ordered by position
/// in `a`, with a row's matches emitted in `b` order.
Result<Bat> Join(const Bat& a, const Bat& b);

/// Partitioned parallel hash join with the same output as the serial form:
/// the build side is hash-partitioned and the partition tables built in
/// parallel, probe morsels over `a` run in parallel, and the per-morsel
/// outputs are merged in morsel order.
Result<Bat> Join(const Bat& a, const Bat& b, const ExecContext& ctx);

/// semijoin(a, b): pairs of `a` whose head occurs as a head in `b`.
Bat Semijoin(const Bat& a, const Bat& b);

/// kdiff(a, b): pairs of `a` whose head does NOT occur as a head in `b`.
Bat Diff(const Bat& a, const Bat& b);

/// group(a): maps equal tails to a dense group id; returns BAT[oid, oid]
/// (original head -> group id) and fills `representatives` with one input
/// position per group. Group ids are dense in first-occurrence order.
Bat Group(const Bat& a, std::vector<size_t>* representatives);

/// Parallel group with identical output: per-morsel local tables are built
/// in parallel, merged serially in morsel order into the global dense-id
/// table (preserving first-occurrence numbering), then rows are re-mapped in
/// parallel.
Bat Group(const Bat& a, std::vector<size_t>* representatives,
          const ExecContext& ctx);

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_BAT_H_
