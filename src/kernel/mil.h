#ifndef COBRA_KERNEL_MIL_H_
#define COBRA_KERNEL_MIL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "base/diag.h"
#include "base/io.h"
#include "base/status.h"
#include "base/trace.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"

namespace cobra::kernel {

class PersistentStore;

/// A value in a MIL script: a BAT, a scalar, or a string.
using MilValue = std::variant<Bat, double, std::string>;

/// A small interpreter for a MIL-like scripting language over the BAT
/// catalog — the interface language of the physical level (the paper's
/// Figs. 4/5 list MIL procedures; Moa operator programs are rewritten into
/// exactly this kind of script).
///
/// Statements (each terminated by ';'):
///   VAR name := <expr>;      declare a session variable
///   name := <expr>;          reassign
///   PRINT <expr>;            append the value to the output log
///   trace on|off|dump|json;  session profiling: `on` records a span for
///                            every traced operator the session runs, `dump`
///                            appends the indented span tree to the output,
///                            `json` appends the JSON export, `off` stops
///                            recording (collected spans are kept)
///   check '<script>';        static analysis only: runs AnalyzeMilScript in
///                            strict mode over the quoted script (in the
///                            session's variable/trace environment) and
///                            appends its findings — or "check: ok" — to the
///                            output without executing anything
///   save '<dir>';            checkpoint the whole catalog into a persistent
///                            store at <dir> (snapshot + WAL rotation)
///   load '<dir>';            replace the catalog with the recovered state
///                            of the store at <dir> (NotFound if none);
///                            session variables bound before the load keep
///                            their old snapshots (value semantics)
///   checkpoint;              checkpoint into the session's attached data
///                            directory (constructor argument or the
///                            COBRA_DATA_DIR environment variable);
///                            FailedPrecondition when neither is set
///   <expr>;                  evaluate for effect
///
/// Expressions:
///   bat("name")                     catalog BAT (copied into the session)
///   persist("name", e)              store a BAT into the catalog
///   new("int"|"dbl"|"str"|"oid")    empty BAT
///   insert(e, head, tail)           append one pair (returns the BAT)
///   select(e, lo, hi)               numeric range select
///   select(e, "s")                  string equality select
///   join(e1, e2) / semijoin(e1, e2) / diff(e1, e2)
///   concat(e1, e2)                  e1 with e2's rows appended
///   reverse(e) / mirror(e) / slice(e, begin, end)
///   group(e)                        dense group ids per row (oid tail, same
///                                   row count as e)
///   sum(e) / max(e) / min(e) / count(e)       scalar aggregates
///   argmax(e)                       position of the max (numeric tails;
///                                   FailedPrecondition on an empty BAT)
///   threadcnt(n)                    degree of parallelism for subsequent
///                                   select/join/aggregate calls (paper
///                                   Fig. 4); n >= 1, returns n
///   shards(n)                       shard count for subsequent select/join/
///                                   aggregate calls: n > 1 partitions the
///                                   operand on the morsel grid and runs the
///                                   scatter-gather exchange operators
///                                   (kernel/shard.h), byte-identical to the
///                                   single-catalog plan; n in [1, 64],
///                                   returns n. While n > 1 the storage
///                                   statements (save/load/checkpoint) are a
///                                   FailedPrecondition — storage of a
///                                   sharded deployment is per-shard
///                                   (ShardedCatalog), not a single
///                                   directory; reset with shards(1)
///   info("name") / info(e)          one-line acceleration report (index
///                                   lifecycle, version, dictionary size);
///                                   the name form inspects the catalog BAT
///                                   in place, so accreted indexes show up
///   numeric literals, "string" literals, variables
class MilSession {
 public:
  /// `data_dir` is the `checkpoint` statement's target; when empty it
  /// defaults to the COBRA_DATA_DIR environment variable (and `checkpoint`
  /// is a FailedPrecondition when neither names a directory).
  explicit MilSession(Catalog* catalog, std::string data_dir = "");
  ~MilSession();

  /// Runs a script; returns the PRINT output (one line per PRINT).
  ///
  /// Every script is first verified by AnalyzeMilScript: type, arity,
  /// use-before-define, and catalog errors are rejected with a positioned
  /// "mil:LINE:COL: error: ..." diagnostic BEFORE any operator executes, so
  /// a failing script never leaves partial side effects (no variables
  /// assigned, no BATs persisted, threadcnt unchanged).
  Result<std::string> Execute(const std::string& script);

  /// Reads a session variable (for host code after Execute).
  Result<const MilValue*> Get(const std::string& name) const;

  /// Execution parameters applied to parallelizable operators; threadcnt is
  /// scriptable via `threadcnt(n)` and persists across Execute() calls.
  const ExecContext& exec() const { return exec_; }
  void set_exec(const ExecContext& exec) { exec_ = exec; }

  /// The session's trace sink; null until `trace on` has run. Spans persist
  /// across Execute() calls until the next `trace on`.
  const trace::TraceSink* trace_sink() const { return trace_sink_.get(); }

  /// Filesystem save/load/checkpoint run against; defaults to the real one.
  /// Tests inject MemFs/FaultFs here.
  void set_fs(io::Fs* fs) { fs_ = fs; }
  const std::string& data_dir() const { return data_dir_; }

  /// TEST SEAM — never enable outside tests. Forwards to
  /// ExchangeOptions::unsafe_unordered_merge on every sharded operator this
  /// session runs, skipping the deterministic shard-order merge. The
  /// differential harness proves it can catch the bug class.
  void set_unsafe_unordered_merge(bool unsafe) {
    unsafe_unordered_merge_ = unsafe;
  }

  /// TEST SEAM — disables the analyzer-driven plan rewrites (provably-empty
  /// select skipping the kernel, provably-single-shard select skipping the
  /// scatter) so the differential harness can compare rewritten vs
  /// unrewritten plans byte for byte. Static intervals are still attached
  /// to trace spans.
  void set_disable_static_rewrites(bool disable) {
    disable_static_rewrites_ = disable;
  }

  /// TEST SEAM — never enable outside tests. Forwards
  /// MilAnalysisContext::unsafe_narrow_intervals into the analysis run
  /// before every Execute: static cardinality upper bounds come out too
  /// narrow (unsound). The differential harness's containment walk must
  /// catch this defect.
  void set_unsafe_narrow_intervals(bool unsafe) {
    unsafe_narrow_intervals_ = unsafe;
  }

 private:
  Catalog* catalog_;
  std::map<std::string, MilValue> variables_;
  ExecContext exec_;
  std::unique_ptr<trace::TraceSink> trace_sink_;
  io::Fs* fs_;
  std::string data_dir_;
  /// Store bound to data_dir_, created lazily by the first `checkpoint`.
  std::unique_ptr<PersistentStore> store_;
  bool unsafe_unordered_merge_ = false;
  bool disable_static_rewrites_ = false;
  bool unsafe_narrow_intervals_ = false;
};

/// Environment a MIL script is analyzed against: the catalog its bat()/
/// persist()/info() calls resolve in, the session variables already bound
/// (their static types seed the analysis), and whether `trace on` has
/// already run (so `trace dump` in a later Execute is legal).
struct MilAnalysisContext {
  const Catalog* catalog = nullptr;
  const std::map<std::string, MilValue>* variables = nullptr;
  bool trace_ready = false;
  /// Filesystem `load` existence checks run against; when null the analyzer
  /// assumes every directory exists (conservative: never a false rejection).
  const io::Fs* fs = nullptr;
  /// Whether the session has a data directory attached, so `checkpoint` has
  /// a target. Mirrors MilSession's constructor/COBRA_DATA_DIR state.
  bool data_dir_attached = false;
  /// Shard count in effect when the script starts (the session's
  /// ExecContext::shards). The analyzer tracks `shards(n)` literals from
  /// here; while the statically-known count exceeds 1, storage statements
  /// are positioned FailedPrecondition errors (mirroring the interpreter).
  /// An unknown count (set from a non-literal) passes conservatively.
  int shards = 1;
  /// Strict (`check` statement) mode: stale-snapshot hazards — a variable
  /// bound by bat('x') used after persist('x', ...) replaced the catalog
  /// BAT — are errors. In engine mode they are warnings, because MIL's
  /// value semantics make the read well-defined (merely stale).
  bool strict = false;
  /// Morsel row count of the executing session (ExecContext::MorselRows()).
  /// The abstract interpreter partitions catalog BATs on exactly this grid
  /// when computing per-shard zone maps for single-shard proofs; a mismatch
  /// with the runtime grid only costs precision, never soundness, because
  /// shard facts carry their slice boundaries and the rewrite revalidates
  /// them against the runtime partition before applying.
  size_t morsel_rows = size_t{1} << 16;
  /// TEST SEAM — never enable outside tests. Deliberately unsound: halves
  /// every finite static cardinality upper bound the analyzer derives (and
  /// clamps unbounded ones), so observed row counts can exceed their
  /// interval. Exists to prove the differential harness's containment walk
  /// has teeth.
  bool unsafe_narrow_intervals = false;
};

/// Sentinel for "no static upper bound" in a PlanFact / cardinality
/// interval.
inline constexpr uint64_t kCardUnbounded = ~uint64_t{0};

/// One statically-proven fact about an operator call site, keyed by the
/// 1-based line/column of the call's name token (MIL scripts are
/// straight-line, so a call site executes at most once per run and the key
/// is unambiguous). Produced by the abstract interpreter alongside the
/// diagnostics; consumed by MilSession to attach `static=[lo,hi]` intervals
/// to trace spans and to apply the provable-empty / provable-single-shard
/// rewrites.
struct PlanFact {
  int line = 0;
  int col = 0;
  /// MIL function name at the call site ("select", "join", "group", ...).
  std::string op;
  /// Static cardinality interval of the operator's output rows. Soundness
  /// contract: every execution of this call site over the analyzed catalog
  /// state produces rows_out with rows_lo <= rows_out <= rows_hi.
  uint64_t rows_lo = 0;
  uint64_t rows_hi = kCardUnbounded;
  /// The output is statically proven empty (predicate outside the value
  /// hull, empty input, or a string probe absent from a fully-known
  /// dictionary): execution can skip the operator and return an empty BAT.
  bool provably_empty = false;
  /// When >= 0 and the plan is sharded: every row of the output provably
  /// originates in this shard slice (zone maps of all other slices miss the
  /// predicate), so the scatter can run that one slice serially.
  int single_shard = -1;
  /// Shard count the single_shard proof was computed against; the rewrite
  /// only applies when the runtime partitioning matches.
  size_t single_shard_of = 0;
  /// Global row range [shard_begin, shard_end) of the proven shard slice.
  /// The rewrite revalidates these against the runtime partition before
  /// applying, so a grid mismatch costs precision, never soundness.
  size_t shard_begin = 0;
  size_t shard_end = 0;
  /// The operator's direct catalog input had a built tail hash index at
  /// analysis time (advisory catalog fact; not load-bearing for rewrites).
  bool index_present = false;
};

/// Full result of the abstract interpretation: the diagnostics (exactly
/// AnalyzeMilScript's) plus the per-call-site facts in script order.
struct MilAnalysis {
  DiagnosticList diags;
  std::vector<PlanFact> facts;
};

/// Abstract-interpretation entry point: everything AnalyzeMilScript checks,
/// plus the PlanFact list (static cardinality intervals, provable-empty and
/// single-shard proofs). AnalyzeMilScript is this, minus the facts.
MilAnalysis AnalyzeMilScriptWithFacts(const std::string& script,
                                      const MilAnalysisContext& context);

/// Static "compile-time" verification of a MIL script: infers the static
/// type (number / string / BAT-with-tail-type) of every expression through
/// the script and reports use-before-define, arity and argument-type
/// mismatches, string ops on numeric tails (and vice versa), unknown
/// catalog/function names, out-of-range threadcnt/shards literals, storage
/// statements while the statically-known shard count exceeds 1, trace-state
/// violations, and aggregate calls on provably empty BATs — each with the
/// 1-based line/column of the offending token and the StatusCode execution
/// would have failed with. Conservative by construction: anything whose
/// type or value is not statically known passes, so a script the
/// interpreter would execute successfully is never rejected.
DiagnosticList AnalyzeMilScript(const std::string& script,
                                const MilAnalysisContext& context);

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_MIL_H_
