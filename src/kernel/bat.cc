#include "kernel/bat.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.h"
#include "base/strings.h"

namespace cobra::kernel {

std::string_view TailTypeName(TailType t) {
  switch (t) {
    case TailType::kInt:
      return "int";
    case TailType::kFloat:
      return "dbl";
    case TailType::kStr:
      return "str";
    case TailType::kOid:
      return "oid";
  }
  return "?";
}

double Value::Numeric() const {
  switch (type_) {
    case TailType::kInt:
      return static_cast<double>(AsInt());
    case TailType::kFloat:
      return AsFloat();
    default:
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case TailType::kInt:
      return std::to_string(AsInt());
    case TailType::kFloat:
      return StrFormat("%g", AsFloat());
    case TailType::kStr:
      return AsStr();
    case TailType::kOid:
      return StrFormat("oid(%llu)", static_cast<unsigned long long>(AsOid()));
  }
  return "?";
}

Status Bat::Append(Oid head, const Value& tail) {
  if (tail.type() != tail_type_) {
    return Status::InvalidArgument(
        StrFormat("appending %s tail to BAT[oid,%s]",
                  std::string(TailTypeName(tail.type())).c_str(),
                  std::string(TailTypeName(tail_type_)).c_str()));
  }
  head_.push_back(head);
  switch (tail_type_) {
    case TailType::kInt:
      ints_.push_back(tail.AsInt());
      break;
    case TailType::kFloat:
      floats_.push_back(tail.AsFloat());
      break;
    case TailType::kStr:
      strs_.push_back(tail.AsStr());
      break;
    case TailType::kOid:
      oids_.push_back(tail.AsOid());
      break;
  }
  return Status::OK();
}

void Bat::AppendInt(Oid head, int64_t v) {
  COBRA_CHECK(tail_type_ == TailType::kInt);
  head_.push_back(head);
  ints_.push_back(v);
}

void Bat::AppendFloat(Oid head, double v) {
  COBRA_CHECK(tail_type_ == TailType::kFloat);
  head_.push_back(head);
  floats_.push_back(v);
}

void Bat::AppendStr(Oid head, std::string v) {
  COBRA_CHECK(tail_type_ == TailType::kStr);
  head_.push_back(head);
  strs_.push_back(std::move(v));
}

void Bat::AppendOid(Oid head, Oid v) {
  COBRA_CHECK(tail_type_ == TailType::kOid);
  head_.push_back(head);
  oids_.push_back(v);
}

void Bat::AppendRowFrom(Oid head, const Bat& src, size_t i) {
  COBRA_CHECK(tail_type_ == src.tail_type_);
  head_.push_back(head);
  switch (tail_type_) {
    case TailType::kInt:
      ints_.push_back(src.ints_[i]);
      break;
    case TailType::kFloat:
      floats_.push_back(src.floats_[i]);
      break;
    case TailType::kStr:
      strs_.push_back(src.strs_[i]);
      break;
    case TailType::kOid:
      oids_.push_back(src.oids_[i]);
      break;
  }
}

void Bat::Reserve(size_t n) {
  head_.reserve(n);
  switch (tail_type_) {
    case TailType::kInt:
      ints_.reserve(n);
      break;
    case TailType::kFloat:
      floats_.reserve(n);
      break;
    case TailType::kStr:
      strs_.reserve(n);
      break;
    case TailType::kOid:
      oids_.reserve(n);
      break;
  }
}

void Bat::Concat(const Bat& other) {
  COBRA_CHECK(tail_type_ == other.tail_type_);
  head_.insert(head_.end(), other.head_.begin(), other.head_.end());
  switch (tail_type_) {
    case TailType::kInt:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
    case TailType::kFloat:
      floats_.insert(floats_.end(), other.floats_.begin(),
                     other.floats_.end());
      break;
    case TailType::kStr:
      strs_.insert(strs_.end(), other.strs_.begin(), other.strs_.end());
      break;
    case TailType::kOid:
      oids_.insert(oids_.end(), other.oids_.begin(), other.oids_.end());
      break;
  }
}

Bat Bat::FromOidColumns(std::vector<Oid> heads, std::vector<Oid> tails) {
  COBRA_CHECK(heads.size() == tails.size());
  Bat out(TailType::kOid);
  out.head_ = std::move(heads);
  out.oids_ = std::move(tails);
  return out;
}

Value Bat::TailAt(size_t i) const {
  switch (tail_type_) {
    case TailType::kInt:
      return Value::Int(ints_[i]);
    case TailType::kFloat:
      return Value::Float(floats_[i]);
    case TailType::kStr:
      return Value::Str(strs_[i]);
    case TailType::kOid:
      return Value::OfOid(oids_[i]);
  }
  return Value();
}

namespace {

/// Order-preserving merge of per-morsel operator outputs.
Bat MergeParts(TailType type, const std::vector<Bat>& parts) {
  size_t total = 0;
  for (const Bat& p : parts) total += p.size();
  Bat out(type);
  out.Reserve(total);
  for (const Bat& p : parts) out.Concat(p);
  return out;
}

/// splitmix64 finalizer — deterministic partitioning hash for oids.
uint64_t HashOid(Oid x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Result<Bat> Bat::SelectEq(const Value& v) const {
  if (v.type() != tail_type_) {
    return Status::InvalidArgument("SelectEq value type mismatch");
  }
  Bat out(tail_type_);
  for (size_t i = 0; i < size(); ++i) {
    if (TailAt(i) == v) {
      Status s = out.Append(head_[i], v);
      COBRA_CHECK(s.ok());
    }
  }
  return out;
}

Result<Bat> Bat::SelectEq(const Value& v, const ExecContext& ctx) const {
  if (v.type() != tail_type_) {
    return Status::InvalidArgument("SelectEq value type mismatch");
  }
  if (!ctx.UseParallel(size())) return SelectEq(v);
  std::vector<Bat> parts(ctx.NumMorsels(size()), Bat(tail_type_));
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    switch (tail_type_) {
      case TailType::kInt: {
        const int64_t want = v.AsInt();
        for (size_t i = begin; i < end; ++i) {
          if (ints_[i] == want) out.AppendInt(head_[i], want);
        }
        break;
      }
      case TailType::kFloat: {
        const double want = v.AsFloat();
        for (size_t i = begin; i < end; ++i) {
          if (floats_[i] == want) out.AppendFloat(head_[i], want);
        }
        break;
      }
      case TailType::kStr: {
        const std::string& want = v.AsStr();
        for (size_t i = begin; i < end; ++i) {
          if (strs_[i] == want) out.AppendStr(head_[i], want);
        }
        break;
      }
      case TailType::kOid: {
        const Oid want = v.AsOid();
        for (size_t i = begin; i < end; ++i) {
          if (oids_[i] == want) out.AppendOid(head_[i], want);
        }
        break;
      }
    }
  });
  return MergeParts(tail_type_, parts);
}

Result<Bat> Bat::SelectRange(double lo, double hi) const {
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("SelectRange requires a numeric tail");
  }
  Bat out(tail_type_);
  for (size_t i = 0; i < size(); ++i) {
    const double v =
        tail_type_ == TailType::kInt ? static_cast<double>(ints_[i])
                                     : floats_[i];
    if (v >= lo && v <= hi) {
      if (tail_type_ == TailType::kInt) {
        out.AppendInt(head_[i], ints_[i]);
      } else {
        out.AppendFloat(head_[i], floats_[i]);
      }
    }
  }
  return out;
}

Result<Bat> Bat::SelectRange(double lo, double hi,
                             const ExecContext& ctx) const {
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("SelectRange requires a numeric tail");
  }
  if (!ctx.UseParallel(size())) return SelectRange(lo, hi);
  std::vector<Bat> parts(ctx.NumMorsels(size()), Bat(tail_type_));
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    if (tail_type_ == TailType::kInt) {
      for (size_t i = begin; i < end; ++i) {
        const double v = static_cast<double>(ints_[i]);
        if (v >= lo && v <= hi) out.AppendInt(head_[i], ints_[i]);
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        if (floats_[i] >= lo && floats_[i] <= hi) {
          out.AppendFloat(head_[i], floats_[i]);
        }
      }
    }
  });
  return MergeParts(tail_type_, parts);
}

Result<Bat> Bat::SelectStr(const std::string& s) const {
  if (tail_type_ != TailType::kStr) {
    return Status::InvalidArgument("SelectStr requires a str tail");
  }
  Bat out(TailType::kStr);
  for (size_t i = 0; i < size(); ++i) {
    if (strs_[i] == s) out.AppendStr(head_[i], strs_[i]);
  }
  return out;
}

Result<Bat> Bat::SelectStr(const std::string& s, const ExecContext& ctx) const {
  if (tail_type_ != TailType::kStr) {
    return Status::InvalidArgument("SelectStr requires a str tail");
  }
  if (!ctx.UseParallel(size())) return SelectStr(s);
  std::vector<Bat> parts(ctx.NumMorsels(size()), Bat(TailType::kStr));
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    for (size_t i = begin; i < end; ++i) {
      if (strs_[i] == s) out.AppendStr(head_[i], strs_[i]);
    }
  });
  return MergeParts(TailType::kStr, parts);
}

Result<Bat> Bat::Reverse() const {
  if (tail_type_ != TailType::kOid) {
    return Status::InvalidArgument("Reverse requires an oid tail");
  }
  Bat out(TailType::kOid);
  for (size_t i = 0; i < size(); ++i) out.AppendOid(oids_[i], head_[i]);
  return out;
}

Bat Bat::Mirror() const {
  Bat out(TailType::kOid);
  for (Oid h : head_) out.AppendOid(h, h);
  return out;
}

Bat Bat::Slice(size_t begin, size_t end) const {
  Bat out(tail_type_);
  const size_t e = std::min(end, size());
  for (size_t i = begin; i < e; ++i) {
    Status s = out.Append(head_[i], TailAt(i));
    COBRA_CHECK(s.ok());
  }
  return out;
}

Result<double> Bat::Sum() const {
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Sum requires a numeric tail");
  }
  double acc = 0.0;
  if (tail_type_ == TailType::kInt) {
    for (int64_t v : ints_) acc += static_cast<double>(v);
  } else {
    for (double v : floats_) acc += v;
  }
  return acc;
}

Result<double> Bat::Sum(const ExecContext& ctx) const {
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Sum requires a numeric tail");
  }
  // Always reduce per fixed-size morsel, even on the serial path: the
  // morsel boundaries depend only on ctx.morsel_rows, so the rounding of
  // the combined float sum is identical at every threadcnt.
  const size_t num = ctx.NumMorsels(size());
  std::vector<double> partial(num, 0.0);
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    double acc = 0.0;
    if (tail_type_ == TailType::kInt) {
      for (size_t i = begin; i < end; ++i) acc += static_cast<double>(ints_[i]);
    } else {
      for (size_t i = begin; i < end; ++i) acc += floats_[i];
    }
    partial[m] = acc;
  });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

Result<double> Bat::Max() const {
  COBRA_ASSIGN_OR_RETURN(size_t pos, ArgMax());
  return TailAt(pos).Numeric();
}

Result<double> Bat::Max(const ExecContext& ctx) const {
  COBRA_ASSIGN_OR_RETURN(size_t pos, ArgMax(ctx));
  return TailAt(pos).Numeric();
}

Result<double> Bat::Min() const {
  if (empty()) return Status::FailedPrecondition("Min of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Min requires a numeric tail");
  }
  double best = TailAt(0).Numeric();
  for (size_t i = 1; i < size(); ++i) {
    best = std::min(best, TailAt(i).Numeric());
  }
  return best;
}

Result<double> Bat::Min(const ExecContext& ctx) const {
  if (empty()) return Status::FailedPrecondition("Min of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Min requires a numeric tail");
  }
  const size_t num = ctx.NumMorsels(size());
  std::vector<double> partial(num, 0.0);
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    double best = tail_type_ == TailType::kInt
                      ? static_cast<double>(ints_[begin])
                      : floats_[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      const double v = tail_type_ == TailType::kInt
                           ? static_cast<double>(ints_[i])
                           : floats_[i];
      best = std::min(best, v);
    }
    partial[m] = best;
  });
  double best = partial[0];
  for (size_t m = 1; m < num; ++m) best = std::min(best, partial[m]);
  return best;
}

Result<size_t> Bat::ArgMax() const {
  if (empty()) return Status::FailedPrecondition("ArgMax of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("ArgMax requires a numeric tail");
  }
  size_t best = 0;
  double best_v = TailAt(0).Numeric();
  for (size_t i = 1; i < size(); ++i) {
    const double v = TailAt(i).Numeric();
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

Result<size_t> Bat::ArgMax(const ExecContext& ctx) const {
  if (empty()) return Status::FailedPrecondition("ArgMax of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("ArgMax requires a numeric tail");
  }
  const size_t num = ctx.NumMorsels(size());
  std::vector<size_t> best_pos(num, 0);
  std::vector<double> best_val(num, 0.0);
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    size_t best = begin;
    double bv = tail_type_ == TailType::kInt
                    ? static_cast<double>(ints_[begin])
                    : floats_[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      const double v = tail_type_ == TailType::kInt
                           ? static_cast<double>(ints_[i])
                           : floats_[i];
      if (v > bv) {
        bv = v;
        best = i;
      }
    }
    best_pos[m] = best;
    best_val[m] = bv;
  });
  // Combine strictly-greater in morsel order: resolves ties to the lowest
  // position, matching the serial scan.
  size_t best = best_pos[0];
  double bv = best_val[0];
  for (size_t m = 1; m < num; ++m) {
    if (best_val[m] > bv) {
      bv = best_val[m];
      best = best_pos[m];
    }
  }
  return best;
}

Result<Bat> Join(const Bat& a, const Bat& b) {
  if (a.tail_type() != TailType::kOid) {
    return Status::InvalidArgument("Join needs an oid tail on the left BAT");
  }
  std::unordered_map<Oid, std::vector<size_t>> index;
  index.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) index[b.HeadAt(j)].push_back(j);
  Bat out(b.tail_type());
  for (size_t i = 0; i < a.size(); ++i) {
    auto it = index.find(a.OidAt(i));
    if (it == index.end()) continue;
    for (size_t j : it->second) {
      Status s = out.Append(a.HeadAt(i), b.TailAt(j));
      COBRA_CHECK(s.ok());
    }
  }
  return out;
}

Result<Bat> Join(const Bat& a, const Bat& b, const ExecContext& ctx) {
  if (a.tail_type() != TailType::kOid) {
    return Status::InvalidArgument("Join needs an oid tail on the left BAT");
  }
  if ((!ctx.UseParallel(a.size()) && !ctx.UseParallel(b.size())) ||
      b.size() > std::numeric_limits<uint32_t>::max()) {
    return Join(a, b);
  }
  // Build side: hash-partition b's heads so each partition table can be
  // built without synchronization. Bucket scan per b-morsel runs in
  // parallel; buckets keep b order, so duplicate matches are emitted in b
  // order exactly as the serial join does.
  size_t num_partitions = 1;
  while (num_partitions < static_cast<size_t>(ctx.threadcnt) * 4) {
    num_partitions <<= 1;
  }
  const size_t bnum = ctx.NumMorsels(b.size());
  std::vector<std::vector<std::vector<uint32_t>>> buckets(
      bnum, std::vector<std::vector<uint32_t>>(num_partitions));
  ForEachMorsel(ctx, b.size(), [&](size_t m, size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      buckets[m][HashOid(b.HeadAt(j)) & (num_partitions - 1)].push_back(
          static_cast<uint32_t>(j));
    }
  });
  std::vector<std::unordered_map<Oid, std::vector<uint32_t>>> tables(
      num_partitions);
  ParallelForEach(ctx, num_partitions, [&](size_t p) {
    auto& table = tables[p];
    for (size_t m = 0; m < bnum; ++m) {
      for (uint32_t j : buckets[m][p]) table[b.HeadAt(j)].push_back(j);
    }
  });
  // Probe morsels over a in parallel; per-morsel outputs merge in order.
  std::vector<Bat> parts(ctx.NumMorsels(a.size()), Bat(b.tail_type()));
  ForEachMorsel(ctx, a.size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    for (size_t i = begin; i < end; ++i) {
      const Oid t = a.OidAt(i);
      const auto& table = tables[HashOid(t) & (num_partitions - 1)];
      auto it = table.find(t);
      if (it == table.end()) continue;
      for (uint32_t j : it->second) out.AppendRowFrom(a.HeadAt(i), b, j);
    }
  });
  return MergeParts(b.tail_type(), parts);
}

Bat Semijoin(const Bat& a, const Bat& b) {
  std::unordered_set<Oid> heads;
  heads.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) heads.insert(b.HeadAt(j));
  Bat out(a.tail_type());
  for (size_t i = 0; i < a.size(); ++i) {
    if (heads.count(a.HeadAt(i)) != 0) {
      Status s = out.Append(a.HeadAt(i), a.TailAt(i));
      COBRA_CHECK(s.ok());
    }
  }
  return out;
}

Bat Diff(const Bat& a, const Bat& b) {
  std::unordered_set<Oid> heads;
  heads.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) heads.insert(b.HeadAt(j));
  Bat out(a.tail_type());
  for (size_t i = 0; i < a.size(); ++i) {
    if (heads.count(a.HeadAt(i)) == 0) {
      Status s = out.Append(a.HeadAt(i), a.TailAt(i));
      COBRA_CHECK(s.ok());
    }
  }
  return out;
}

Bat Group(const Bat& a, std::vector<size_t>* representatives) {
  Bat out(TailType::kOid);
  std::unordered_map<std::string, Oid> group_of;
  if (representatives != nullptr) representatives->clear();
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string key = a.TailAt(i).ToString();
    auto [it, inserted] =
        group_of.emplace(key, static_cast<Oid>(group_of.size()));
    if (inserted && representatives != nullptr) {
      representatives->push_back(i);
    }
    out.AppendOid(a.HeadAt(i), it->second);
  }
  return out;
}

Bat Group(const Bat& a, std::vector<size_t>* representatives,
          const ExecContext& ctx) {
  if (!ctx.UseParallel(a.size())) return Group(a, representatives);
  const size_t num = ctx.NumMorsels(a.size());
  // Phase 1 (parallel): per-morsel tables in local first-occurrence order.
  struct LocalTable {
    std::unordered_map<std::string, uint32_t> ids;
    std::vector<std::string> keys;   // local first-occurrence order
    std::vector<size_t> first_pos;   // global position of first occurrence
    std::vector<uint32_t> row_ids;   // local id per row of the morsel
  };
  std::vector<LocalTable> locals(num);
  ForEachMorsel(ctx, a.size(), [&](size_t m, size_t begin, size_t end) {
    LocalTable& t = locals[m];
    t.row_ids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      std::string key = a.TailAt(i).ToString();
      auto [it, inserted] =
          t.ids.try_emplace(std::move(key),
                            static_cast<uint32_t>(t.keys.size()));
      if (inserted) {
        t.keys.push_back(it->first);
        t.first_pos.push_back(i);
      }
      t.row_ids.push_back(it->second);
    }
  });
  // Phase 2 (serial, morsel order): assign global dense ids. A key's global
  // id is fixed by the first morsel that saw it, so the numbering equals the
  // serial scan's first-occurrence order.
  std::unordered_map<std::string, Oid> global;
  if (representatives != nullptr) representatives->clear();
  std::vector<std::vector<Oid>> local_to_global(num);
  for (size_t m = 0; m < num; ++m) {
    local_to_global[m].reserve(locals[m].keys.size());
    for (size_t k = 0; k < locals[m].keys.size(); ++k) {
      auto [it, inserted] = global.try_emplace(
          locals[m].keys[k], static_cast<Oid>(global.size()));
      if (inserted && representatives != nullptr) {
        representatives->push_back(locals[m].first_pos[k]);
      }
      local_to_global[m].push_back(it->second);
    }
  }
  // Phase 3 (parallel): re-map rows through the global table.
  std::vector<Oid> gids(a.size());
  ForEachMorsel(ctx, a.size(), [&](size_t m, size_t begin, size_t end) {
    const LocalTable& t = locals[m];
    for (size_t i = begin; i < end; ++i) {
      gids[i] = local_to_global[m][t.row_ids[i - begin]];
    }
  });
  return Bat::FromOidColumns(a.heads(), std::move(gids));
}

}  // namespace cobra::kernel
