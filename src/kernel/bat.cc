#include "kernel/bat.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.h"
#include "base/strings.h"

namespace cobra::kernel {

std::string_view TailTypeName(TailType t) {
  switch (t) {
    case TailType::kInt:
      return "int";
    case TailType::kFloat:
      return "dbl";
    case TailType::kStr:
      return "str";
    case TailType::kOid:
      return "oid";
  }
  return "?";
}

double Value::Numeric() const {
  switch (type_) {
    case TailType::kInt:
      return static_cast<double>(AsInt());
    case TailType::kFloat:
      return AsFloat();
    default:
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case TailType::kInt:
      return std::to_string(AsInt());
    case TailType::kFloat:
      return StrFormat("%g", AsFloat());
    case TailType::kStr:
      return AsStr();
    case TailType::kOid:
      return StrFormat("oid(%llu)", static_cast<unsigned long long>(AsOid()));
  }
  return "?";
}

Status Bat::Append(Oid head, const Value& tail) {
  if (tail.type() != tail_type_) {
    return Status::InvalidArgument(
        StrFormat("appending %s tail to BAT[oid,%s]",
                  std::string(TailTypeName(tail.type())).c_str(),
                  std::string(TailTypeName(tail_type_)).c_str()));
  }
  head_.push_back(head);
  switch (tail_type_) {
    case TailType::kInt:
      ints_.push_back(tail.AsInt());
      break;
    case TailType::kFloat:
      floats_.push_back(tail.AsFloat());
      break;
    case TailType::kStr:
      strs_.push_back(tail.AsStr());
      break;
    case TailType::kOid:
      oids_.push_back(tail.AsOid());
      break;
  }
  return Status::OK();
}

void Bat::AppendInt(Oid head, int64_t v) {
  COBRA_CHECK(tail_type_ == TailType::kInt);
  head_.push_back(head);
  ints_.push_back(v);
}

void Bat::AppendFloat(Oid head, double v) {
  COBRA_CHECK(tail_type_ == TailType::kFloat);
  head_.push_back(head);
  floats_.push_back(v);
}

void Bat::AppendStr(Oid head, std::string v) {
  COBRA_CHECK(tail_type_ == TailType::kStr);
  head_.push_back(head);
  strs_.push_back(std::move(v));
}

void Bat::AppendOid(Oid head, Oid v) {
  COBRA_CHECK(tail_type_ == TailType::kOid);
  head_.push_back(head);
  oids_.push_back(v);
}

Value Bat::TailAt(size_t i) const {
  switch (tail_type_) {
    case TailType::kInt:
      return Value::Int(ints_[i]);
    case TailType::kFloat:
      return Value::Float(floats_[i]);
    case TailType::kStr:
      return Value::Str(strs_[i]);
    case TailType::kOid:
      return Value::OfOid(oids_[i]);
  }
  return Value();
}

Result<Bat> Bat::SelectEq(const Value& v) const {
  if (v.type() != tail_type_) {
    return Status::InvalidArgument("SelectEq value type mismatch");
  }
  Bat out(tail_type_);
  for (size_t i = 0; i < size(); ++i) {
    if (TailAt(i) == v) {
      Status s = out.Append(head_[i], v);
      COBRA_CHECK(s.ok());
    }
  }
  return out;
}

Result<Bat> Bat::SelectRange(double lo, double hi) const {
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("SelectRange requires a numeric tail");
  }
  Bat out(tail_type_);
  for (size_t i = 0; i < size(); ++i) {
    const double v =
        tail_type_ == TailType::kInt ? static_cast<double>(ints_[i])
                                     : floats_[i];
    if (v >= lo && v <= hi) {
      if (tail_type_ == TailType::kInt) {
        out.AppendInt(head_[i], ints_[i]);
      } else {
        out.AppendFloat(head_[i], floats_[i]);
      }
    }
  }
  return out;
}

Result<Bat> Bat::SelectStr(const std::string& s) const {
  if (tail_type_ != TailType::kStr) {
    return Status::InvalidArgument("SelectStr requires a str tail");
  }
  Bat out(TailType::kStr);
  for (size_t i = 0; i < size(); ++i) {
    if (strs_[i] == s) out.AppendStr(head_[i], strs_[i]);
  }
  return out;
}

Result<Bat> Bat::Reverse() const {
  if (tail_type_ != TailType::kOid) {
    return Status::InvalidArgument("Reverse requires an oid tail");
  }
  Bat out(TailType::kOid);
  for (size_t i = 0; i < size(); ++i) out.AppendOid(oids_[i], head_[i]);
  return out;
}

Bat Bat::Mirror() const {
  Bat out(TailType::kOid);
  for (Oid h : head_) out.AppendOid(h, h);
  return out;
}

Bat Bat::Slice(size_t begin, size_t end) const {
  Bat out(tail_type_);
  const size_t e = std::min(end, size());
  for (size_t i = begin; i < e; ++i) {
    Status s = out.Append(head_[i], TailAt(i));
    COBRA_CHECK(s.ok());
  }
  return out;
}

Result<double> Bat::Sum() const {
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Sum requires a numeric tail");
  }
  double acc = 0.0;
  if (tail_type_ == TailType::kInt) {
    for (int64_t v : ints_) acc += static_cast<double>(v);
  } else {
    for (double v : floats_) acc += v;
  }
  return acc;
}

Result<double> Bat::Max() const {
  COBRA_ASSIGN_OR_RETURN(size_t pos, ArgMax());
  return TailAt(pos).Numeric();
}

Result<double> Bat::Min() const {
  if (empty()) return Status::FailedPrecondition("Min of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Min requires a numeric tail");
  }
  double best = TailAt(0).Numeric();
  for (size_t i = 1; i < size(); ++i) {
    best = std::min(best, TailAt(i).Numeric());
  }
  return best;
}

Result<size_t> Bat::ArgMax() const {
  if (empty()) return Status::FailedPrecondition("ArgMax of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("ArgMax requires a numeric tail");
  }
  size_t best = 0;
  double best_v = TailAt(0).Numeric();
  for (size_t i = 1; i < size(); ++i) {
    const double v = TailAt(i).Numeric();
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

Result<Bat> Join(const Bat& a, const Bat& b) {
  if (a.tail_type() != TailType::kOid) {
    return Status::InvalidArgument("Join needs an oid tail on the left BAT");
  }
  std::unordered_map<Oid, std::vector<size_t>> index;
  index.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) index[b.HeadAt(j)].push_back(j);
  Bat out(b.tail_type());
  for (size_t i = 0; i < a.size(); ++i) {
    auto it = index.find(a.OidAt(i));
    if (it == index.end()) continue;
    for (size_t j : it->second) {
      Status s = out.Append(a.HeadAt(i), b.TailAt(j));
      COBRA_CHECK(s.ok());
    }
  }
  return out;
}

Bat Semijoin(const Bat& a, const Bat& b) {
  std::unordered_set<Oid> heads;
  heads.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) heads.insert(b.HeadAt(j));
  Bat out(a.tail_type());
  for (size_t i = 0; i < a.size(); ++i) {
    if (heads.count(a.HeadAt(i)) != 0) {
      Status s = out.Append(a.HeadAt(i), a.TailAt(i));
      COBRA_CHECK(s.ok());
    }
  }
  return out;
}

Bat Diff(const Bat& a, const Bat& b) {
  std::unordered_set<Oid> heads;
  heads.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) heads.insert(b.HeadAt(j));
  Bat out(a.tail_type());
  for (size_t i = 0; i < a.size(); ++i) {
    if (heads.count(a.HeadAt(i)) == 0) {
      Status s = out.Append(a.HeadAt(i), a.TailAt(i));
      COBRA_CHECK(s.ok());
    }
  }
  return out;
}

Bat Group(const Bat& a, std::vector<size_t>* representatives) {
  Bat out(TailType::kOid);
  std::unordered_map<std::string, Oid> group_of;
  if (representatives != nullptr) representatives->clear();
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string key = a.TailAt(i).ToString();
    auto [it, inserted] =
        group_of.emplace(key, static_cast<Oid>(group_of.size()));
    if (inserted && representatives != nullptr) {
      representatives->push_back(i);
    }
    out.AppendOid(a.HeadAt(i), it->second);
  }
  return out;
}

}  // namespace cobra::kernel
