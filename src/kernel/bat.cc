#include "kernel/bat.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.h"
#include "base/mutex.h"
#include "base/strings.h"
#include "base/thread_annotations.h"
#include "base/trace.h"

namespace cobra::kernel {

namespace {

/// Opens the operator span for a context form; a null context (serial form)
/// or a context with no sink installed records nothing.
trace::SpanGuard OpSpan(const ExecContext* ctx, const char* op) {
  return trace::SpanGuard(ctx != nullptr ? ctx->trace : nullptr,
                          ctx != nullptr ? ctx->trace_parent : nullptr, op);
}

/// NaN-skipping aggregate comparisons: the candidate replaces the best when
/// strictly better, or when the best so far is NaN and the candidate is not.
/// NaN tails therefore never win unless every tail is NaN — and, crucially,
/// the serial scan and the morsel-combined scan agree for any NaN placement
/// (a plain `v > best` poisons whichever range happens to start on a NaN).
bool BetterMax(double v, double best) {
  return std::isnan(best) ? !std::isnan(v) : v > best;
}
bool BetterMin(double v, double best) {
  return std::isnan(best) ? !std::isnan(v) : v < best;
}

/// Head/tail index lifecycle accounting around a probe: snapshot before,
/// then record the probe plus any build (and whether a stale index forced
/// it) after. All accel_info() calls are gated on the span being live.
struct IndexProbeScope {
  IndexProbeScope(trace::SpanGuard& span, const Bat& bat, bool head)
      : span_(span), bat_(bat), head_(head) {
    if (!span_.enabled()) return;
    const Bat::AccelInfo before = bat_.accel_info();
    builds_before_ = head_ ? before.head_builds : before.tail_builds;
    was_stale_ = head_ ? (before.head_index_built && !before.head_index_fresh)
                       : (before.tail_index_built && !before.tail_index_fresh);
  }

  /// Call once the probe (index lookup attempt) has happened.
  void Record() {
    if (!span_.enabled()) return;
    span_.IndexProbes(1);
    const Bat::AccelInfo after = bat_.accel_info();
    const uint64_t built =
        (head_ ? after.head_builds : after.tail_builds) - builds_before_;
    span_.IndexBuilds(built);
    if (was_stale_ && built > 0) span_.IndexInvalidations(1);
  }

 private:
  trace::SpanGuard& span_;
  const Bat& bat_;
  bool head_;
  uint64_t builds_before_ = 0;
  bool was_stale_ = false;
};

}  // namespace

std::string_view TailTypeName(TailType t) {
  switch (t) {
    case TailType::kInt:
      return "int";
    case TailType::kFloat:
      return "dbl";
    case TailType::kStr:
      return "str";
    case TailType::kOid:
      return "oid";
  }
  return "?";
}

Result<double> Value::Numeric() const {
  switch (type_) {
    case TailType::kInt:
      return static_cast<double>(AsInt());
    case TailType::kFloat:
      return AsFloat();
    default:
      return Status::InvalidArgument(
          StrFormat("no numeric view of a %s value",
                    std::string(TailTypeName(type_)).c_str()));
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case TailType::kInt:
      return std::to_string(AsInt());
    case TailType::kFloat:
      return StrFormat("%g", AsFloat());
    case TailType::kStr:
      return AsStr();
    case TailType::kOid:
      return StrFormat("oid(%llu)", static_cast<unsigned long long>(AsOid()));
  }
  return "?";
}

// -- Acceleration state -----------------------------------------------------

/// Shared per-BAT acceleration state. Index builds and lookups are
/// serialized on `mu`; the published indexes are immutable, so probes use
/// the returned shared_ptr snapshots outside the lock. Counters are relaxed
/// atomics (diagnostics only).
struct Bat::Accel {
  Mutex mu;
  std::shared_ptr<const HashIndex> tail COBRA_GUARDED_BY(mu);
  std::shared_ptr<const HashIndex> head COBRA_GUARDED_BY(mu);
  std::atomic<uint64_t> tail_builds{0};
  std::atomic<uint64_t> tail_probes{0};
  std::atomic<uint64_t> head_builds{0};
  std::atomic<uint64_t> head_probes{0};
  std::atomic<uint64_t> tail_extends{0};
  std::atomic<uint64_t> head_extends{0};
};

Bat::Accel& Bat::accel() const {
  Accel* a = accel_.load(std::memory_order_acquire);
  if (a != nullptr) return *a;
  auto* fresh = new Accel();
  if (accel_.compare_exchange_strong(a, fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;  // another probe won the race
  return *a;
}

Bat::~Bat() { delete accel_.load(std::memory_order_acquire); }

Bat::Bat(const Bat& other)
    : tail_type_(other.tail_type_),
      head_(other.head_),
      ints_(other.ints_),
      floats_(other.floats_),
      oids_(other.oids_),
      str_codes_(other.str_codes_),
      dict_(other.dict_),
      version_(other.version_),
      append_maintenance_(other.append_maintenance_) {
  dict_order_.assign(dict_.size(), nullptr);
  for (const auto& [s, code] : dict_) dict_order_[code] = &s;
}

Bat& Bat::operator=(const Bat& other) {
  if (this == &other) return *this;
  Bat copy(other);
  *this = std::move(copy);
  return *this;
}

Bat::Bat(Bat&& other) noexcept
    : tail_type_(other.tail_type_),
      head_(std::move(other.head_)),
      ints_(std::move(other.ints_)),
      floats_(std::move(other.floats_)),
      oids_(std::move(other.oids_)),
      str_codes_(std::move(other.str_codes_)),
      dict_(std::move(other.dict_)),
      dict_order_(std::move(other.dict_order_)),
      version_(other.version_),
      append_maintenance_(other.append_maintenance_),
      accel_(other.accel_.exchange(nullptr, std::memory_order_acq_rel)) {}

Bat& Bat::operator=(Bat&& other) noexcept {
  if (this == &other) return *this;
  delete accel_.load(std::memory_order_acquire);
  tail_type_ = other.tail_type_;
  head_ = std::move(other.head_);
  ints_ = std::move(other.ints_);
  floats_ = std::move(other.floats_);
  oids_ = std::move(other.oids_);
  str_codes_ = std::move(other.str_codes_);
  dict_ = std::move(other.dict_);
  dict_order_ = std::move(other.dict_order_);
  version_ = other.version_;
  append_maintenance_ = other.append_maintenance_;
  accel_.store(other.accel_.exchange(nullptr, std::memory_order_acq_rel),
               std::memory_order_release);
  return *this;
}

uint32_t Bat::InternStr(std::string v) {
  auto [it, inserted] =
      dict_.try_emplace(std::move(v), static_cast<uint32_t>(dict_.size()));
  if (inserted) dict_order_.push_back(&it->first);
  return it->second;
}

bool Bat::LookupStrCode(const std::string& s, uint32_t* code) const {
  auto it = dict_.find(s);
  if (it == dict_.end()) return false;
  *code = it->second;
  return true;
}

uint64_t Bat::TailKeyAt(size_t i) const {
  switch (tail_type_) {
    case TailType::kInt:
      return std::bit_cast<uint64_t>(ints_[i]);
    case TailType::kFloat: {
      double d = floats_[i];
      if (d == 0.0) d = 0.0;  // fold -0.0 into +0.0: they compare equal
      return std::bit_cast<uint64_t>(d);
    }
    case TailType::kStr:
      return str_codes_[i];
    case TailType::kOid:
      return oids_[i];
  }
  return 0;
}

std::shared_ptr<const Bat::HashIndex> Bat::TailIndex(bool force) const {
  if (size() > std::numeric_limits<uint32_t>::max()) return nullptr;
  Accel& a = accel();
  MutexLock lock(a.mu);
  if (a.tail != nullptr && a.tail->built_version == version_) {
    a.tail_probes.fetch_add(1, std::memory_order_relaxed);
    return a.tail;
  }
  // Build (or rebuild after a mutation) when forced, when an index already
  // accreted on this BAT, or when the BAT is large enough to pay off.
  if (!force && a.tail == nullptr && size() < kAutoIndexMinRows) {
    return nullptr;
  }
  auto idx = std::make_shared<HashIndex>();
  idx->built_version = version_;
  idx->built_rows = size();
  idx->map.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    idx->map[TailKeyAt(i)].push_back(static_cast<uint32_t>(i));
  }
  a.tail = std::move(idx);
  a.tail_builds.fetch_add(1, std::memory_order_relaxed);
  a.tail_probes.fetch_add(1, std::memory_order_relaxed);
  return a.tail;
}

std::shared_ptr<const Bat::HashIndex> Bat::HeadIndex(bool force) const {
  if (size() > std::numeric_limits<uint32_t>::max()) return nullptr;
  Accel& a = accel();
  MutexLock lock(a.mu);
  if (a.head != nullptr && a.head->built_version == version_) {
    a.head_probes.fetch_add(1, std::memory_order_relaxed);
    return a.head;
  }
  if (!force && a.head == nullptr && size() < kAutoIndexMinRows) {
    return nullptr;
  }
  auto idx = std::make_shared<HashIndex>();
  idx->built_version = version_;
  idx->built_rows = size();
  idx->map.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    idx->map[head_[i]].push_back(static_cast<uint32_t>(i));
  }
  a.head = std::move(idx);
  a.head_builds.fetch_add(1, std::memory_order_relaxed);
  a.head_probes.fetch_add(1, std::memory_order_relaxed);
  return a.head;
}

Bat::AccelInfo Bat::accel_info() const {
  AccelInfo info;
  info.version = version_;
  info.dict_entries = dict_order_.size();
  Accel* a = accel_.load(std::memory_order_acquire);
  if (a == nullptr) return info;
  MutexLock lock(a->mu);
  info.tail_index_built = a->tail != nullptr;
  info.tail_index_fresh =
      a->tail != nullptr && a->tail->built_version == version_;
  info.head_index_built = a->head != nullptr;
  info.head_index_fresh =
      a->head != nullptr && a->head->built_version == version_;
  info.tail_builds = a->tail_builds.load(std::memory_order_relaxed);
  info.tail_probes = a->tail_probes.load(std::memory_order_relaxed);
  info.head_builds = a->head_builds.load(std::memory_order_relaxed);
  info.head_probes = a->head_probes.load(std::memory_order_relaxed);
  info.tail_extends = a->tail_extends.load(std::memory_order_relaxed);
  info.head_extends = a->head_extends.load(std::memory_order_relaxed);
  info.tail_indexed_rows = a->tail != nullptr ? a->tail->built_rows : 0;
  info.head_indexed_rows = a->head != nullptr ? a->head->built_rows : 0;
  return info;
}

// -- Streaming append maintenance -------------------------------------------

namespace {

/// Extends one index slot over rows [old_rows, size): in place when this
/// BAT holds the only reference, on a clone otherwise (a reader's stashed
/// snapshot is immutable). Extension applies only when the index covers
/// exactly the pre-append prefix — anything else (stale from a
/// non-maintained mutation) is left for the next probe's rebuild.
template <typename KeyAt>
bool ExtendIndexLocked(std::shared_ptr<const Bat::HashIndex>* slot,
                       size_t old_rows, size_t new_rows, uint64_t version,
                       const KeyAt& key_at) {
  const Bat::HashIndex* idx = slot->get();
  if (idx == nullptr || idx->built_rows != old_rows) return false;
  std::shared_ptr<Bat::HashIndex> clone;
  Bat::HashIndex* w;
  if (slot->use_count() == 1) {
    // Sole owner: mutation implies exclusive BAT access, so no probe can be
    // copying the pointer concurrently — in-place extension is safe.
    w = const_cast<Bat::HashIndex*>(idx);
  } else {
    clone = std::make_shared<Bat::HashIndex>(*idx);
    w = clone.get();
  }
  for (size_t i = old_rows; i < new_rows; ++i) {
    w->map[key_at(i)].push_back(static_cast<uint32_t>(i));
  }
  w->built_rows = new_rows;
  w->built_version = version;
  if (clone != nullptr) *slot = std::move(clone);
  return true;
}

}  // namespace

void Bat::MaintainAppendSlow(size_t old_rows) {
  Accel* a = accel_.load(std::memory_order_acquire);
  if (a == nullptr) return;
  if (size() > std::numeric_limits<uint32_t>::max()) return;
  MutexLock lock(a->mu);
  if (ExtendIndexLocked(&a->tail, old_rows, size(), version_,
                        [this](size_t i) { return TailKeyAt(i); })) {
    a->tail_extends.fetch_add(1, std::memory_order_relaxed);
  }
  if (ExtendIndexLocked(&a->head, old_rows, size(), version_,
                        [this](size_t i) { return head_[i]; })) {
    a->head_extends.fetch_add(1, std::memory_order_relaxed);
  }
}

void Bat::unsafe_stamp_indexes_fresh() {
  Accel* a = accel_.load(std::memory_order_acquire);
  if (a == nullptr) return;
  MutexLock lock(a->mu);
  // Stamp WITHOUT extending: built_rows is faked to the current size so the
  // lie is internally consistent — only the map is missing rows.
  auto stamp = [this](std::shared_ptr<const HashIndex>* slot) {
    if (slot->get() == nullptr) return;
    std::shared_ptr<HashIndex> w;
    if (slot->use_count() == 1) {
      w = std::const_pointer_cast<HashIndex>(*slot);
    } else {
      w = std::make_shared<HashIndex>(**slot);
    }
    w->built_version = version_;
    w->built_rows = size();
    *slot = std::move(w);
  };
  stamp(&a->tail);
  stamp(&a->head);
}

Result<uint64_t> Bat::CountEq(const Value& v) const {
  if (v.type() != tail_type_) {
    return Status::InvalidArgument(
        StrFormat("counting %s value in BAT[oid,%s]",
                  std::string(TailTypeName(v.type())).c_str(),
                  std::string(TailTypeName(tail_type_)).c_str()));
  }
  uint64_t key = 0;
  switch (tail_type_) {
    case TailType::kInt:
      key = std::bit_cast<uint64_t>(v.AsInt());
      break;
    case TailType::kFloat: {
      double d = v.AsFloat();
      if (d == 0.0) d = 0.0;
      key = std::bit_cast<uint64_t>(d);
      break;
    }
    case TailType::kStr: {
      uint32_t code = 0;
      if (!LookupStrCode(v.AsStr(), &code)) return uint64_t{0};
      key = code;
      break;
    }
    case TailType::kOid:
      key = v.AsOid();
      break;
  }
  // Probe-only: serve a fresh index if one exists, else scan. Never builds,
  // so a gating probe leaves the acceleration state untouched.
  Accel* a = accel_.load(std::memory_order_acquire);
  if (a != nullptr) {
    MutexLock lock(a->mu);
    if (a->tail != nullptr && a->tail->built_version == version_) {
      a->tail_probes.fetch_add(1, std::memory_order_relaxed);
      auto it = a->tail->map.find(key);
      return it == a->tail->map.end() ? uint64_t{0}
                                      : static_cast<uint64_t>(it->second.size());
    }
  }
  uint64_t count = 0;
  for (size_t i = 0; i < size(); ++i) {
    if (TailKeyAt(i) == key) ++count;
  }
  return count;
}

// -- Mutation ---------------------------------------------------------------

Status Bat::Append(Oid head, const Value& tail) {
  if (tail.type() != tail_type_) {
    return Status::InvalidArgument(
        StrFormat("appending %s tail to BAT[oid,%s]",
                  std::string(TailTypeName(tail.type())).c_str(),
                  std::string(TailTypeName(tail_type_)).c_str()));
  }
  head_.push_back(head);
  switch (tail_type_) {
    case TailType::kInt:
      ints_.push_back(tail.AsInt());
      break;
    case TailType::kFloat:
      floats_.push_back(tail.AsFloat());
      break;
    case TailType::kStr:
      str_codes_.push_back(InternStr(tail.AsStr()));
      break;
    case TailType::kOid:
      oids_.push_back(tail.AsOid());
      break;
  }
  Bump();
  MaintainAppend(size() - 1);
  return Status::OK();
}

void Bat::AppendInt(Oid head, int64_t v) {
  COBRA_CHECK(tail_type_ == TailType::kInt);
  head_.push_back(head);
  ints_.push_back(v);
  Bump();
  MaintainAppend(size() - 1);
}

void Bat::AppendFloat(Oid head, double v) {
  COBRA_CHECK(tail_type_ == TailType::kFloat);
  head_.push_back(head);
  floats_.push_back(v);
  Bump();
  MaintainAppend(size() - 1);
}

void Bat::AppendStr(Oid head, std::string v) {
  COBRA_CHECK(tail_type_ == TailType::kStr);
  head_.push_back(head);
  str_codes_.push_back(InternStr(std::move(v)));
  Bump();
  MaintainAppend(size() - 1);
}

void Bat::AppendOid(Oid head, Oid v) {
  COBRA_CHECK(tail_type_ == TailType::kOid);
  head_.push_back(head);
  oids_.push_back(v);
  Bump();
  MaintainAppend(size() - 1);
}

void Bat::AppendRowFrom(Oid head, const Bat& src, size_t i) {
  COBRA_CHECK(tail_type_ == src.tail_type_);
  head_.push_back(head);
  switch (tail_type_) {
    case TailType::kInt:
      ints_.push_back(src.ints_[i]);
      break;
    case TailType::kFloat:
      floats_.push_back(src.floats_[i]);
      break;
    case TailType::kStr:
      if (&src == this) {
        const uint32_t code = str_codes_[i];
        str_codes_.push_back(code);
      } else {
        str_codes_.push_back(InternStr(src.StrAt(i)));
      }
      break;
    case TailType::kOid:
      oids_.push_back(src.oids_[i]);
      break;
  }
  Bump();
  MaintainAppend(size() - 1);
}

void Bat::Reserve(size_t n) {
  head_.reserve(n);
  switch (tail_type_) {
    case TailType::kInt:
      ints_.reserve(n);
      break;
    case TailType::kFloat:
      floats_.reserve(n);
      break;
    case TailType::kStr:
      str_codes_.reserve(n);
      break;
    case TailType::kOid:
      oids_.reserve(n);
      break;
  }
}

void Bat::Concat(const Bat& other) {
  COBRA_CHECK(tail_type_ == other.tail_type_);
  const size_t old_rows = size();
  head_.insert(head_.end(), other.head_.begin(), other.head_.end());
  switch (tail_type_) {
    case TailType::kInt:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
    case TailType::kFloat:
      floats_.insert(floats_.end(), other.floats_.begin(),
                     other.floats_.end());
      break;
    case TailType::kStr: {
      // Remap the other dictionary's codes through ours.
      std::vector<uint32_t> remap(other.dict_order_.size());
      for (size_t c = 0; c < other.dict_order_.size(); ++c) {
        remap[c] = InternStr(*other.dict_order_[c]);
      }
      str_codes_.reserve(str_codes_.size() + other.str_codes_.size());
      for (uint32_t c : other.str_codes_) str_codes_.push_back(remap[c]);
      break;
    }
    case TailType::kOid:
      oids_.insert(oids_.end(), other.oids_.begin(), other.oids_.end());
      break;
  }
  Bump();
  // Other's codes were remapped through this dictionary above, so TailKeyAt
  // over the new rows reads this BAT's (already consistent) codes.
  MaintainAppend(old_rows);
}

void Bat::Concat(const Bat& other, const ExecContext& ctx) {
  trace::SpanGuard span = OpSpan(&ctx, "kernel.concat");
  span.RowsIn(size() + other.size());
  Concat(other);
  span.RowsOut(size());
}

Bat Bat::FromOidColumns(std::vector<Oid> heads, std::vector<Oid> tails) {
  COBRA_CHECK(heads.size() == tails.size());
  Bat out(TailType::kOid);
  out.head_ = std::move(heads);
  out.oids_ = std::move(tails);
  return out;
}

Value Bat::TailAt(size_t i) const {
  switch (tail_type_) {
    case TailType::kInt:
      return Value::Int(ints_[i]);
    case TailType::kFloat:
      return Value::Float(floats_[i]);
    case TailType::kStr:
      return Value::Str(StrAt(i));
    case TailType::kOid:
      return Value::OfOid(oids_[i]);
  }
  return Value();
}

namespace {

/// Order-preserving merge of per-morsel operator outputs.
Bat MergeParts(TailType type, const std::vector<Bat>& parts) {
  size_t total = 0;
  for (const Bat& p : parts) total += p.size();
  Bat out(type);
  out.Reserve(total);
  for (const Bat& p : parts) out.Concat(p);
  return out;
}

/// splitmix64 finalizer — deterministic partitioning hash for oids.
uint64_t HashOid(Oid x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

// -- Selects ----------------------------------------------------------------

Bat Bat::EmitEqHits(const std::vector<uint32_t>& hits, const Value& v) const {
  Bat out(tail_type_);
  out.Reserve(hits.size());
  switch (tail_type_) {
    case TailType::kInt: {
      const int64_t want = v.AsInt();
      for (uint32_t p : hits) out.AppendInt(head_[p], want);
      break;
    }
    case TailType::kFloat: {
      const double want = v.AsFloat();
      for (uint32_t p : hits) out.AppendFloat(head_[p], want);
      break;
    }
    case TailType::kStr: {
      const uint32_t code = out.InternStr(v.AsStr());
      for (uint32_t p : hits) {
        out.head_.push_back(head_[p]);
        out.str_codes_.push_back(code);
      }
      break;
    }
    case TailType::kOid: {
      const Oid want = v.AsOid();
      for (uint32_t p : hits) out.AppendOid(head_[p], want);
      break;
    }
  }
  return out;
}

Result<Bat> Bat::SelectEqImpl(const Value& v, const ExecContext* ctx,
                              const char* op) const {
  trace::SpanGuard span = OpSpan(ctx, op);
  span.RowsIn(size());
  if (v.type() != tail_type_) {
    return Status::InvalidArgument("SelectEq value type mismatch");
  }
  // Resolve the canonical probe key; some probes provably match no row
  // (string absent from the dictionary, NaN never compares equal).
  uint64_t key = 0;
  uint32_t str_code = 0;
  switch (tail_type_) {
    case TailType::kInt:
      key = std::bit_cast<uint64_t>(v.AsInt());
      break;
    case TailType::kFloat: {
      double d = v.AsFloat();
      if (d != d) return Bat(tail_type_);  // NaN matches nothing
      if (d == 0.0) d = 0.0;
      key = std::bit_cast<uint64_t>(d);
      break;
    }
    case TailType::kStr:
      if (!LookupStrCode(v.AsStr(), &str_code)) return Bat(tail_type_);
      span.DictHits(1);
      key = str_code;
      break;
    case TailType::kOid:
      key = v.AsOid();
      break;
  }
  if (ctx == nullptr || ctx->auto_index) {
    IndexProbeScope probe(span, *this, /*head=*/false);
    if (auto idx = TailIndex(/*force=*/false)) {
      probe.Record();
      auto it = idx->map.find(key);
      if (it == idx->map.end()) return Bat(tail_type_);
      Bat out = EmitEqHits(it->second, v);
      span.RowsOut(out.size());
      return out;
    }
  }
  if (ctx == nullptr || !ctx->UseParallel(size())) {
    // Serial scan over the typed column (codes, never string bytes).
    span.Morsels(1);
    Bat out(tail_type_);
    switch (tail_type_) {
      case TailType::kInt: {
        const int64_t want = v.AsInt();
        for (size_t i = 0; i < size(); ++i) {
          if (ints_[i] == want) out.AppendInt(head_[i], want);
        }
        break;
      }
      case TailType::kFloat: {
        const double want = v.AsFloat();
        for (size_t i = 0; i < size(); ++i) {
          if (floats_[i] == want) out.AppendFloat(head_[i], want);
        }
        break;
      }
      case TailType::kStr: {
        for (size_t i = 0; i < size(); ++i) {
          if (str_codes_[i] == str_code) {
            out.AppendRowFrom(head_[i], *this, i);
          }
        }
        break;
      }
      case TailType::kOid: {
        const Oid want = v.AsOid();
        for (size_t i = 0; i < size(); ++i) {
          if (oids_[i] == want) out.AppendOid(head_[i], want);
        }
        break;
      }
    }
    span.RowsOut(out.size());
    return out;
  }
  std::vector<Bat> parts(ctx->NumMorsels(size()), Bat(tail_type_));
  ForEachMorsel(*ctx, size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    switch (tail_type_) {
      case TailType::kInt: {
        const int64_t want = v.AsInt();
        for (size_t i = begin; i < end; ++i) {
          if (ints_[i] == want) out.AppendInt(head_[i], want);
        }
        break;
      }
      case TailType::kFloat: {
        const double want = v.AsFloat();
        for (size_t i = begin; i < end; ++i) {
          if (floats_[i] == want) out.AppendFloat(head_[i], want);
        }
        break;
      }
      case TailType::kStr: {
        for (size_t i = begin; i < end; ++i) {
          if (str_codes_[i] == str_code) {
            out.AppendRowFrom(head_[i], *this, i);
          }
        }
        break;
      }
      case TailType::kOid: {
        const Oid want = v.AsOid();
        for (size_t i = begin; i < end; ++i) {
          if (oids_[i] == want) out.AppendOid(head_[i], want);
        }
        break;
      }
    }
  });
  span.Morsels(parts.size());
  Bat out = MergeParts(tail_type_, parts);
  span.RowsOut(out.size());
  return out;
}

Result<Bat> Bat::SelectEq(const Value& v) const {
  return SelectEqImpl(v, nullptr, "kernel.select_eq");
}

Result<Bat> Bat::SelectEq(const Value& v, const ExecContext& ctx) const {
  return SelectEqImpl(v, &ctx, "kernel.select_eq");
}

Result<Bat> Bat::SelectRange(double lo, double hi) const {
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("SelectRange requires a numeric tail");
  }
  Bat out(tail_type_);
  for (size_t i = 0; i < size(); ++i) {
    const double v =
        tail_type_ == TailType::kInt ? static_cast<double>(ints_[i])
                                     : floats_[i];
    if (v >= lo && v <= hi) {
      if (tail_type_ == TailType::kInt) {
        out.AppendInt(head_[i], ints_[i]);
      } else {
        out.AppendFloat(head_[i], floats_[i]);
      }
    }
  }
  return out;
}

Result<Bat> Bat::SelectRange(double lo, double hi,
                             const ExecContext& ctx) const {
  trace::SpanGuard span = OpSpan(&ctx, "kernel.select_range");
  span.RowsIn(size());
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("SelectRange requires a numeric tail");
  }
  if (!ctx.UseParallel(size())) {
    COBRA_ASSIGN_OR_RETURN(Bat out, SelectRange(lo, hi));
    span.Morsels(1);
    span.RowsOut(out.size());
    return out;
  }
  std::vector<Bat> parts(ctx.NumMorsels(size()), Bat(tail_type_));
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    if (tail_type_ == TailType::kInt) {
      for (size_t i = begin; i < end; ++i) {
        const double v = static_cast<double>(ints_[i]);
        if (v >= lo && v <= hi) out.AppendInt(head_[i], ints_[i]);
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        if (floats_[i] >= lo && floats_[i] <= hi) {
          out.AppendFloat(head_[i], floats_[i]);
        }
      }
    }
  });
  span.Morsels(parts.size());
  Bat out = MergeParts(tail_type_, parts);
  span.RowsOut(out.size());
  return out;
}

Result<Bat> Bat::SelectStr(const std::string& s) const {
  if (tail_type_ != TailType::kStr) {
    return Status::InvalidArgument("SelectStr requires a str tail");
  }
  return SelectEqImpl(Value::Str(s), nullptr, "kernel.select_str");
}

Result<Bat> Bat::SelectStr(const std::string& s, const ExecContext& ctx) const {
  if (tail_type_ != TailType::kStr) {
    return Status::InvalidArgument("SelectStr requires a str tail");
  }
  return SelectEqImpl(Value::Str(s), &ctx, "kernel.select_str");
}

Result<Bat> Bat::Reverse() const {
  if (tail_type_ != TailType::kOid) {
    return Status::InvalidArgument("Reverse requires an oid tail");
  }
  Bat out(TailType::kOid);
  for (size_t i = 0; i < size(); ++i) out.AppendOid(oids_[i], head_[i]);
  return out;
}

Bat Bat::Mirror() const {
  Bat out(TailType::kOid);
  for (Oid h : head_) out.AppendOid(h, h);
  return out;
}

Bat Bat::Slice(size_t begin, size_t end) const {
  Bat out(tail_type_);
  const size_t e = std::min(end, size());
  for (size_t i = begin; i < e; ++i) out.AppendRowFrom(head_[i], *this, i);
  return out;
}

// -- Aggregates -------------------------------------------------------------

Result<double> Bat::Sum() const {
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Sum requires a numeric tail");
  }
  double acc = 0.0;
  if (tail_type_ == TailType::kInt) {
    for (int64_t v : ints_) acc += static_cast<double>(v);
  } else {
    for (double v : floats_) acc += v;
  }
  return acc;
}

Result<double> Bat::Sum(const ExecContext& ctx) const {
  trace::SpanGuard span = OpSpan(&ctx, "kernel.sum");
  span.RowsIn(size());
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Sum requires a numeric tail");
  }
  // Always reduce per fixed-size morsel, even on the serial path: the
  // morsel boundaries depend only on ctx.morsel_rows, so the rounding of
  // the combined float sum is identical at every threadcnt.
  const size_t num = ctx.NumMorsels(size());
  std::vector<double> partial(num, 0.0);
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    double acc = 0.0;
    if (tail_type_ == TailType::kInt) {
      for (size_t i = begin; i < end; ++i) acc += static_cast<double>(ints_[i]);
    } else {
      for (size_t i = begin; i < end; ++i) acc += floats_[i];
    }
    partial[m] = acc;
  });
  double acc = 0.0;
  for (double p : partial) acc += p;
  span.Morsels(num);
  span.RowsOut(1);
  return acc;
}

Result<double> Bat::Max() const {
  COBRA_ASSIGN_OR_RETURN(size_t pos, ArgMax());
  return tail_type_ == TailType::kInt ? static_cast<double>(ints_[pos])
                                      : floats_[pos];
}

Result<double> Bat::Max(const ExecContext& ctx) const {
  trace::SpanGuard span = OpSpan(&ctx, "kernel.max");
  span.RowsIn(size());
  // Delegates to ArgMax; nest its span so the delegation shows in profiles.
  COBRA_ASSIGN_OR_RETURN(size_t pos,
                         ArgMax(ctx.WithTraceParent(span.span())));
  span.RowsOut(1);
  return tail_type_ == TailType::kInt ? static_cast<double>(ints_[pos])
                                      : floats_[pos];
}

Result<double> Bat::Min() const {
  if (empty()) return Status::FailedPrecondition("Min of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Min requires a numeric tail");
  }
  double best = tail_type_ == TailType::kInt ? static_cast<double>(ints_[0])
                                             : floats_[0];
  for (size_t i = 1; i < size(); ++i) {
    const double v = tail_type_ == TailType::kInt
                         ? static_cast<double>(ints_[i])
                         : floats_[i];
    if (BetterMin(v, best)) best = v;
  }
  return best;
}

Result<double> Bat::Min(const ExecContext& ctx) const {
  trace::SpanGuard span = OpSpan(&ctx, "kernel.min");
  span.RowsIn(size());
  if (empty()) return Status::FailedPrecondition("Min of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("Min requires a numeric tail");
  }
  const size_t num = ctx.NumMorsels(size());
  std::vector<double> partial(num, 0.0);
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    double best = tail_type_ == TailType::kInt
                      ? static_cast<double>(ints_[begin])
                      : floats_[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      const double v = tail_type_ == TailType::kInt
                           ? static_cast<double>(ints_[i])
                           : floats_[i];
      if (BetterMin(v, best)) best = v;
    }
    partial[m] = best;
  });
  double best = partial[0];
  for (size_t m = 1; m < num; ++m) {
    if (BetterMin(partial[m], best)) best = partial[m];
  }
  span.Morsels(num);
  span.RowsOut(1);
  return best;
}

Result<size_t> Bat::ArgMax() const {
  if (empty()) return Status::FailedPrecondition("ArgMax of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("ArgMax requires a numeric tail");
  }
  size_t best = 0;
  double best_v = tail_type_ == TailType::kInt ? static_cast<double>(ints_[0])
                                               : floats_[0];
  for (size_t i = 1; i < size(); ++i) {
    const double v = tail_type_ == TailType::kInt
                         ? static_cast<double>(ints_[i])
                         : floats_[i];
    if (BetterMax(v, best_v)) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

Result<size_t> Bat::ArgMax(const ExecContext& ctx) const {
  trace::SpanGuard span = OpSpan(&ctx, "kernel.arg_max");
  span.RowsIn(size());
  if (empty()) return Status::FailedPrecondition("ArgMax of empty BAT");
  if (tail_type_ != TailType::kInt && tail_type_ != TailType::kFloat) {
    return Status::InvalidArgument("ArgMax requires a numeric tail");
  }
  const size_t num = ctx.NumMorsels(size());
  std::vector<size_t> best_pos(num, 0);
  std::vector<double> best_val(num, 0.0);
  ForEachMorsel(ctx, size(), [&](size_t m, size_t begin, size_t end) {
    size_t best = begin;
    double bv = tail_type_ == TailType::kInt
                    ? static_cast<double>(ints_[begin])
                    : floats_[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      const double v = tail_type_ == TailType::kInt
                           ? static_cast<double>(ints_[i])
                           : floats_[i];
      if (BetterMax(v, bv)) {
        bv = v;
        best = i;
      }
    }
    best_pos[m] = best;
    best_val[m] = bv;
  });
  // Combine strictly-better in morsel order: resolves ties to the lowest
  // position, matching the serial scan.
  size_t best = best_pos[0];
  double bv = best_val[0];
  for (size_t m = 1; m < num; ++m) {
    if (BetterMax(best_val[m], bv)) {
      bv = best_val[m];
      best = best_pos[m];
    }
  }
  span.Morsels(num);
  span.RowsOut(1);
  return best;
}

// -- Binary operators -------------------------------------------------------

namespace {

/// Pre-index scan join with a throwaway build table — the fallback for
/// build sides past uint32 positions and the ctx.auto_index=false baseline.
Result<Bat> JoinScan(const Bat& a, const Bat& b) {
  std::unordered_map<Oid, std::vector<size_t>> table;
  table.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) table[b.HeadAt(j)].push_back(j);
  Bat out(b.tail_type());
  for (size_t i = 0; i < a.size(); ++i) {
    auto it = table.find(a.OidAt(i));
    if (it == table.end()) continue;
    for (size_t j : it->second) out.AppendRowFrom(a.HeadAt(i), b, j);
  }
  return out;
}

/// The pre-index partitioned parallel join plan, kept as the
/// ctx.auto_index=false path: build side hash-partitioned, partition tables
/// built in parallel, probe morsels merged in morsel order.
Result<Bat> JoinPartitioned(const Bat& a, const Bat& b,
                            const ExecContext& ctx) {
  if ((!ctx.UseParallel(a.size()) && !ctx.UseParallel(b.size())) ||
      b.size() > std::numeric_limits<uint32_t>::max()) {
    return JoinScan(a, b);
  }
  size_t num_partitions = 1;
  while (num_partitions < static_cast<size_t>(ctx.threadcnt) * 4) {
    num_partitions <<= 1;
  }
  const size_t bnum = ctx.NumMorsels(b.size());
  std::vector<std::vector<std::vector<uint32_t>>> buckets(
      bnum, std::vector<std::vector<uint32_t>>(num_partitions));
  ForEachMorsel(ctx, b.size(), [&](size_t m, size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      buckets[m][HashOid(b.HeadAt(j)) & (num_partitions - 1)].push_back(
          static_cast<uint32_t>(j));
    }
  });
  std::vector<std::unordered_map<Oid, std::vector<uint32_t>>> tables(
      num_partitions);
  ParallelForEach(ctx, num_partitions, [&](size_t p) {
    auto& table = tables[p];
    for (size_t m = 0; m < bnum; ++m) {
      for (uint32_t j : buckets[m][p]) table[b.HeadAt(j)].push_back(j);
    }
  });
  std::vector<Bat> parts(ctx.NumMorsels(a.size()), Bat(b.tail_type()));
  ForEachMorsel(ctx, a.size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    for (size_t i = begin; i < end; ++i) {
      const Oid t = a.OidAt(i);
      const auto& table = tables[HashOid(t) & (num_partitions - 1)];
      auto it = table.find(t);
      if (it == table.end()) continue;
      for (uint32_t j : it->second) out.AppendRowFrom(a.HeadAt(i), b, j);
    }
  });
  return MergeParts(b.tail_type(), parts);
}

/// Serial probe of `b`'s persistent head index over all of `a`.
Bat JoinProbeSerial(const Bat& a, const Bat& b, const Bat::HashIndex& idx) {
  Bat out(b.tail_type());
  for (size_t i = 0; i < a.size(); ++i) {
    auto it = idx.map.find(a.OidAt(i));
    if (it == idx.map.end()) continue;
    for (uint32_t j : it->second) out.AppendRowFrom(a.HeadAt(i), b, j);
  }
  return out;
}

std::unordered_set<Oid> HeadSet(const Bat& b) {
  std::unordered_set<Oid> heads;
  heads.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) heads.insert(b.HeadAt(j));
  return heads;
}

/// Shared body of Semijoin/Diff: keeps rows of `a` whose head membership in
/// `contains` equals `keep_present`. Morsel-parallel with ordered merge
/// when a context past the cutoff is given.
template <typename Contains>
Bat FilterByHead(const Bat& a, const ExecContext* ctx, bool keep_present,
                 const Contains& contains) {
  if (ctx == nullptr || !ctx->UseParallel(a.size())) {
    Bat out(a.tail_type());
    for (size_t i = 0; i < a.size(); ++i) {
      if (contains(a.HeadAt(i)) == keep_present) {
        out.AppendRowFrom(a.HeadAt(i), a, i);
      }
    }
    return out;
  }
  std::vector<Bat> parts(ctx->NumMorsels(a.size()), Bat(a.tail_type()));
  ForEachMorsel(*ctx, a.size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    for (size_t i = begin; i < end; ++i) {
      if (contains(a.HeadAt(i)) == keep_present) {
        out.AppendRowFrom(a.HeadAt(i), a, i);
      }
    }
  });
  return MergeParts(a.tail_type(), parts);
}

Bat FilterByHeadOf(const Bat& a, const Bat& b, const ExecContext* ctx,
                   bool keep_present, const char* op) {
  trace::SpanGuard span = OpSpan(ctx, op);
  span.RowsIn(a.size() + b.size());
  if (span.enabled()) {
    span.Detail(StrFormat("left=%zu right=%zu", a.size(), b.size()));
    span.Morsels(ctx != nullptr && ctx->UseParallel(a.size())
                     ? ctx->NumMorsels(a.size())
                     : 1);
  }
  const bool use_index = ctx == nullptr || ctx->auto_index;
  if (use_index) {
    IndexProbeScope probe(span, b, /*head=*/true);
    if (auto idx = b.HeadIndex(/*force=*/true)) {
      probe.Record();
      Bat out = FilterByHead(a, ctx, keep_present, [&idx](Oid h) {
        return idx->map.count(h) != 0;
      });
      span.RowsOut(out.size());
      return out;
    }
  }
  const std::unordered_set<Oid> heads = HeadSet(b);
  Bat out = FilterByHead(a, ctx, keep_present, [&heads](Oid h) {
    return heads.count(h) != 0;
  });
  span.RowsOut(out.size());
  return out;
}

}  // namespace

Result<Bat> Join(const Bat& a, const Bat& b) {
  if (a.tail_type() != TailType::kOid) {
    return Status::InvalidArgument("Join needs an oid tail on the left BAT");
  }
  auto idx = b.HeadIndex(/*force=*/true);
  if (idx == nullptr) return JoinScan(a, b);
  return JoinProbeSerial(a, b, *idx);
}

Result<Bat> Join(const Bat& a, const Bat& b, const ExecContext& ctx) {
  trace::SpanGuard span = OpSpan(&ctx, "kernel.join");
  span.RowsIn(a.size() + b.size());
  if (span.enabled()) {
    span.Detail(StrFormat("probe=%zu build=%zu", a.size(), b.size()));
  }
  if (a.tail_type() != TailType::kOid) {
    return Status::InvalidArgument("Join needs an oid tail on the left BAT");
  }
  if (!ctx.auto_index) {
    COBRA_ASSIGN_OR_RETURN(Bat out, JoinPartitioned(a, b, ctx));
    if (span.enabled()) {
      span.Detail(StrFormat("probe=%zu build=%zu plan=partitioned", a.size(),
                            b.size()));
    }
    span.RowsOut(out.size());
    return out;
  }
  IndexProbeScope probe(span, b, /*head=*/true);
  auto idx = b.HeadIndex(/*force=*/true);
  probe.Record();
  if (idx == nullptr) {
    COBRA_ASSIGN_OR_RETURN(Bat out, JoinScan(a, b));
    if (span.enabled()) {
      span.Detail(
          StrFormat("probe=%zu build=%zu plan=scan", a.size(), b.size()));
    }
    span.RowsOut(out.size());
    return out;
  }
  if (span.enabled()) {
    span.Detail(StrFormat("probe=%zu build=%zu plan=index_probe", a.size(),
                          b.size()));
  }
  if (!ctx.UseParallel(a.size())) {
    Bat out = JoinProbeSerial(a, b, *idx);
    span.Morsels(1);
    span.RowsOut(out.size());
    return out;
  }
  std::vector<Bat> parts(ctx.NumMorsels(a.size()), Bat(b.tail_type()));
  ForEachMorsel(ctx, a.size(), [&](size_t m, size_t begin, size_t end) {
    Bat& out = parts[m];
    for (size_t i = begin; i < end; ++i) {
      auto it = idx->map.find(a.OidAt(i));
      if (it == idx->map.end()) continue;
      for (uint32_t j : it->second) out.AppendRowFrom(a.HeadAt(i), b, j);
    }
  });
  span.Morsels(parts.size());
  Bat out = MergeParts(b.tail_type(), parts);
  span.RowsOut(out.size());
  return out;
}

Bat Semijoin(const Bat& a, const Bat& b) {
  return FilterByHeadOf(a, b, nullptr, /*keep_present=*/true,
                        "kernel.semijoin");
}

Bat Semijoin(const Bat& a, const Bat& b, const ExecContext& ctx) {
  return FilterByHeadOf(a, b, &ctx, /*keep_present=*/true, "kernel.semijoin");
}

Bat Diff(const Bat& a, const Bat& b) {
  return FilterByHeadOf(a, b, nullptr, /*keep_present=*/false, "kernel.diff");
}

Bat Diff(const Bat& a, const Bat& b, const ExecContext& ctx) {
  return FilterByHeadOf(a, b, &ctx, /*keep_present=*/false, "kernel.diff");
}

Bat Group(const Bat& a, std::vector<size_t>* representatives) {
  Bat out(TailType::kOid);
  out.Reserve(a.size());
  std::unordered_map<uint64_t, Oid> group_of;
  if (representatives != nullptr) representatives->clear();
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it, inserted] = group_of.try_emplace(
        a.TailKeyAt(i), static_cast<Oid>(group_of.size()));
    if (inserted && representatives != nullptr) {
      representatives->push_back(i);
    }
    out.AppendOid(a.HeadAt(i), it->second);
  }
  return out;
}

Bat Group(const Bat& a, std::vector<size_t>* representatives,
          const ExecContext& ctx) {
  trace::SpanGuard span = OpSpan(&ctx, "kernel.group");
  span.RowsIn(a.size());
  // Grouping a string tail resolves every row through the dictionary codes.
  if (a.tail_type() == TailType::kStr) span.DictHits(a.size());
  if (!ctx.UseParallel(a.size())) {
    Bat out = Group(a, representatives);
    span.Morsels(1);
    span.RowsOut(out.size());
    return out;
  }
  const size_t num = ctx.NumMorsels(a.size());
  // Phase 1 (parallel): per-morsel tables in local first-occurrence order,
  // keyed by the canonical 64-bit tail key (dictionary code for strings).
  struct LocalTable {
    std::unordered_map<uint64_t, uint32_t> ids;
    std::vector<uint64_t> keys;      // local first-occurrence order
    std::vector<size_t> first_pos;   // global position of first occurrence
    std::vector<uint32_t> row_ids;   // local id per row of the morsel
  };
  std::vector<LocalTable> locals(num);
  ForEachMorsel(ctx, a.size(), [&](size_t m, size_t begin, size_t end) {
    LocalTable& t = locals[m];
    t.row_ids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const uint64_t key = a.TailKeyAt(i);
      auto [it, inserted] =
          t.ids.try_emplace(key, static_cast<uint32_t>(t.keys.size()));
      if (inserted) {
        t.keys.push_back(key);
        t.first_pos.push_back(i);
      }
      t.row_ids.push_back(it->second);
    }
  });
  // Phase 2 (serial, morsel order): assign global dense ids. A key's global
  // id is fixed by the first morsel that saw it, so the numbering equals the
  // serial scan's first-occurrence order.
  std::unordered_map<uint64_t, Oid> global;
  if (representatives != nullptr) representatives->clear();
  std::vector<std::vector<Oid>> local_to_global(num);
  for (size_t m = 0; m < num; ++m) {
    local_to_global[m].reserve(locals[m].keys.size());
    for (size_t k = 0; k < locals[m].keys.size(); ++k) {
      auto [it, inserted] = global.try_emplace(
          locals[m].keys[k], static_cast<Oid>(global.size()));
      if (inserted && representatives != nullptr) {
        representatives->push_back(locals[m].first_pos[k]);
      }
      local_to_global[m].push_back(it->second);
    }
  }
  // Phase 3 (parallel): re-map rows through the global table.
  std::vector<Oid> gids(a.size());
  ForEachMorsel(ctx, a.size(), [&](size_t m, size_t begin, size_t end) {
    const LocalTable& t = locals[m];
    for (size_t i = begin; i < end; ++i) {
      gids[i] = local_to_global[m][t.row_ids[i - begin]];
    }
  });
  span.Morsels(num);
  Bat out = Bat::FromOidColumns(a.heads(), std::move(gids));
  span.RowsOut(out.size());
  return out;
}

}  // namespace cobra::kernel
