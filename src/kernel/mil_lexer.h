#ifndef COBRA_KERNEL_MIL_LEXER_H_
#define COBRA_KERNEL_MIL_LEXER_H_

#include <cctype>
#include <cstdlib>
#include <string>

#include "base/status.h"

namespace cobra::kernel {

/// One MIL token, carrying the 1-based source position of its first
/// character so both the interpreter and the static analyzer can point
/// diagnostics at the offending token.
struct MilToken {
  enum class Kind {
    kWord,
    kNumber,
    kString,
    kAssign,
    kLParen,
    kRParen,
    kComma,
    kSemi,
    kEnd
  };
  Kind kind = Kind::kEnd;
  std::string text;
  double number = 0.0;
  int line = 1;
  int col = 1;
};

/// The MIL tokenizer, shared by the interpreter (mil.cc) and the static
/// analyzer (mil_analyzer.cc) so the two can never disagree about token
/// boundaries. `#` starts a to-end-of-line comment; strings accept either
/// quote character; numbers are lexed greedily over [0-9.eE+-] and then
/// validated with strtod (the token text keeps the greedy spelling, while
/// the cursor advances only past what strtod consumed).
class MilLexer {
 public:
  explicit MilLexer(const std::string& input) : input_(input) {}

  Result<MilToken> Next() {
    SkipSpaceAndComments();
    token_line_ = line_;
    token_col_ = col_;
    if (pos_ >= input_.size()) return Make(MilToken::Kind::kEnd, "");
    const char c = input_[pos_];
    if (c == '(') {
      Bump();
      return Make(MilToken::Kind::kLParen, "(");
    }
    if (c == ')') {
      Bump();
      return Make(MilToken::Kind::kRParen, ")");
    }
    if (c == ',') {
      Bump();
      return Make(MilToken::Kind::kComma, ",");
    }
    if (c == ';') {
      Bump();
      return Make(MilToken::Kind::kSemi, ";");
    }
    if (c == ':' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
      Bump();
      Bump();
      return Make(MilToken::Kind::kAssign, ":=");
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      Bump();
      std::string text;
      while (pos_ < input_.size() && input_[pos_] != quote) {
        text += input_[pos_];
        Bump();
      }
      if (pos_ >= input_.size()) {
        return Status::InvalidArgument("unterminated string in MIL script");
      }
      Bump();
      return Make(MilToken::Kind::kString, std::move(text));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '.') {
      size_t end = pos_;
      std::string text;
      while (end < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[end])) ||
              input_[end] == '.' || input_[end] == '-' ||
              input_[end] == 'e' || input_[end] == 'E' ||
              input_[end] == '+')) {
        text += input_[end++];
      }
      char* parse_end = nullptr;
      const double v = std::strtod(text.c_str(), &parse_end);
      if (parse_end == text.c_str()) {
        return Status::InvalidArgument("bad numeric literal: " + text);
      }
      const size_t consumed = static_cast<size_t>(parse_end - text.c_str());
      for (size_t i = 0; i < consumed; ++i) Bump();
      MilToken tok = Make(MilToken::Kind::kNumber, std::move(text));
      tok.number = v;
      return tok;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        text += input_[pos_];
        Bump();
      }
      return Make(MilToken::Kind::kWord, std::move(text));
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in MIL script");
  }

  /// Position of the most recent token attempt (valid after Next(), also on
  /// error — it points at the character that failed to lex).
  int token_line() const { return token_line_; }
  int token_col() const { return token_col_; }

 private:
  MilToken Make(MilToken::Kind kind, std::string text) const {
    MilToken tok;
    tok.kind = kind;
    tok.text = std::move(text);
    tok.line = token_line_;
    tok.col = token_col_;
    return tok;
  }

  void Bump() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void SkipSpaceAndComments() {
    for (;;) {
      while (pos_ < input_.size() &&
             std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        Bump();
      }
      if (pos_ < input_.size() && input_[pos_] == '#') {
        while (pos_ < input_.size() && input_[pos_] != '\n') Bump();
        continue;
      }
      break;
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int token_line_ = 1;
  int token_col_ = 1;
};

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_MIL_LEXER_H_
