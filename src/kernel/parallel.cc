#include "kernel/parallel.h"

#include <thread>

namespace cobra::kernel {

ThreadPool& KernelPool() {
  static ThreadPool* const kPool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  return *kPool;
}

void ParallelExec(const std::vector<std::function<void()>>& tasks) {
  ThreadPool& pool = KernelPool();
  for (const auto& task : tasks) pool.Schedule(task);
  pool.WaitIdle();
}

}  // namespace cobra::kernel
