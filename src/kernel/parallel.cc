#include "kernel/parallel.h"

#include <thread>

namespace cobra::kernel {

ThreadPool& KernelPool() {
  static ThreadPool* const kPool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  return *kPool;
}

void ParallelExec(const std::vector<std::function<void()>>& tasks) {
  ThreadPool& pool = KernelPool();
  TaskGroup group(&pool);
  for (const auto& task : tasks) group.Run(task);
  group.Wait();
}

}  // namespace cobra::kernel
