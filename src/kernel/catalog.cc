#include "kernel/catalog.h"

namespace cobra::kernel {

Result<Bat*> Catalog::Create(const std::string& name, TailType tail_type) {
  MutexLock lock(mu_);
  auto [it, inserted] = bats_.emplace(name, nullptr);
  if (!inserted) {
    return Status::AlreadyExists("BAT already exists: " + name);
  }
  it->second = std::make_unique<Bat>(tail_type);
  return it->second.get();
}

Result<Bat*> Catalog::Get(const std::string& name) {
  MutexLock lock(mu_);
  auto it = bats_.find(name);
  if (it == bats_.end()) return Status::NotFound("no BAT named " + name);
  return it->second.get();
}

Result<const Bat*> Catalog::Get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = bats_.find(name);
  if (it == bats_.end()) {
    return Status::NotFound("no BAT named " + name);
  }
  return static_cast<const Bat*>(it->second.get());
}

Bat* Catalog::Put(const std::string& name, Bat bat) {
  MutexLock lock(mu_);
  auto& slot = bats_[name];
  slot = std::make_unique<Bat>(std::move(bat));
  return slot.get();
}

Status Catalog::Drop(const std::string& name) {
  MutexLock lock(mu_);
  if (bats_.erase(name) == 0) {
    return Status::NotFound("no BAT named " + name);
  }
  return Status::OK();
}

bool Catalog::Exists(const std::string& name) const {
  MutexLock lock(mu_);
  return bats_.count(name) != 0;
}

std::vector<Catalog::BatStats> Catalog::Stats() const {
  MutexLock lock(mu_);
  std::vector<BatStats> out;
  out.reserve(bats_.size());
  for (const auto& [name, bat] : bats_) {
    out.push_back(BatStats{name, bat->tail_type(), bat->size(),
                           bat->accel_info()});
  }
  return out;
}

std::vector<std::string> Catalog::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(bats_.size());
  for (const auto& [name, bat] : bats_) out.push_back(name);
  return out;
}

}  // namespace cobra::kernel
