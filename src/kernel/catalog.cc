#include "kernel/catalog.h"

#include "base/strings.h"
#include "kernel/persist.h"

namespace cobra::kernel {

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Result<Bat*> Catalog::Create(const std::string& name, TailType tail_type) {
  MutexLock lock(mu_);
  auto [it, inserted] = bats_.emplace(name, nullptr);
  if (!inserted) {
    return Status::AlreadyExists("BAT already exists: " + name);
  }
  it->second = std::make_unique<Bat>(tail_type);
  Bump();
  return it->second.get();
}

Result<Bat*> Catalog::Get(const std::string& name) {
  MutexLock lock(mu_);
  auto it = bats_.find(name);
  if (it == bats_.end()) return Status::NotFound("no BAT named " + name);
  return it->second.get();
}

Result<const Bat*> Catalog::Get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = bats_.find(name);
  if (it == bats_.end()) {
    return Status::NotFound("no BAT named " + name);
  }
  return static_cast<const Bat*>(it->second.get());
}

Bat* Catalog::Put(const std::string& name, Bat bat) {
  MutexLock lock(mu_);
  auto& slot = bats_[name];
  slot = std::make_unique<Bat>(std::move(bat));
  Bump();
  return slot.get();
}

Status Catalog::Drop(const std::string& name) {
  MutexLock lock(mu_);
  if (bats_.erase(name) == 0) {
    return Status::NotFound("no BAT named " + name);
  }
  Bump();
  return Status::OK();
}

Status Catalog::Rename(const std::string& from, const std::string& to) {
  MutexLock lock(mu_);
  auto it = bats_.find(from);
  if (it == bats_.end()) return Status::NotFound("no BAT named " + from);
  if (from == to) return Status::OK();
  if (bats_.count(to) != 0) {
    return Status::AlreadyExists("BAT already exists: " + to);
  }
  bats_[to] = std::move(it->second);
  bats_.erase(from);
  Bump();
  return Status::OK();
}

bool Catalog::Exists(const std::string& name) const {
  MutexLock lock(mu_);
  return bats_.count(name) != 0;
}

void Catalog::AttachStore(const PersistentStore* store) {
  MutexLock lock(mu_);
  store_ = store;
}

Catalog::CatalogStats Catalog::Stats() const {
  CatalogStats out;
  const PersistentStore* store = nullptr;
  {
    MutexLock lock(mu_);
    out.bats.reserve(bats_.size());
    for (const auto& [name, bat] : bats_) {
      out.bats.push_back(
          BatStats{name, bat->tail_type(), bat->size(), bat->accel_info()});
    }
    store = store_;
  }
  // Store stats are read outside mu_: PersistentStore::Checkpoint holds the
  // store mutex while reading this catalog, so taking the store mutex under
  // mu_ would invert that order.
  if (store != nullptr) {
    PersistentStore::DiskStats disk = store->Stats();
    out.store.attached = true;
    out.store.checkpoint_lsn = disk.checkpoint_lsn;
    out.store.last_lsn = disk.last_lsn;
    out.store.on_disk_bytes = disk.on_disk_bytes;
    out.store.snapshot_files = disk.snapshot_files;
    out.store.wal_files = disk.wal_files;
  }
  return out;
}

std::string Catalog::StatsJson() const {
  CatalogStats stats = Stats();
  std::string out = "{\"bats\":[";
  bool first = true;
  for (const BatStats& b : stats.bats) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, b.name);
    out.append(",\"tail_type\":");
    AppendJsonString(&out, TailTypeName(b.tail_type));
    out.append(StrFormat(
        ",\"rows\":%llu,\"dict_entries\":%llu,\"tail_index_built\":%s,"
        "\"tail_index_fresh\":%s,\"head_index_built\":%s,"
        "\"head_index_fresh\":%s,\"tail_probes\":%llu,\"head_probes\":%llu}",
        static_cast<unsigned long long>(b.rows),
        static_cast<unsigned long long>(b.accel.dict_entries),
        b.accel.tail_index_built ? "true" : "false",
        b.accel.tail_index_fresh ? "true" : "false",
        b.accel.head_index_built ? "true" : "false",
        b.accel.head_index_fresh ? "true" : "false",
        static_cast<unsigned long long>(b.accel.tail_probes),
        static_cast<unsigned long long>(b.accel.head_probes)));
  }
  out.append(StrFormat(
      "],\"store\":{\"attached\":%s,\"checkpoint_lsn\":%llu,"
      "\"last_lsn\":%llu,\"on_disk_bytes\":%llu,\"snapshot_files\":%llu,"
      "\"wal_files\":%llu}}",
      stats.store.attached ? "true" : "false",
      static_cast<unsigned long long>(stats.store.checkpoint_lsn),
      static_cast<unsigned long long>(stats.store.last_lsn),
      static_cast<unsigned long long>(stats.store.on_disk_bytes),
      static_cast<unsigned long long>(stats.store.snapshot_files),
      static_cast<unsigned long long>(stats.store.wal_files)));
  return out;
}

std::vector<std::string> Catalog::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(bats_.size());
  for (const auto& [name, bat] : bats_) out.push_back(name);
  return out;
}

}  // namespace cobra::kernel
