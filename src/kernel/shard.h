#ifndef COBRA_KERNEL_SHARD_H_
#define COBRA_KERNEL_SHARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/io.h"
#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/exec_context.h"
#include "kernel/persist.h"

namespace cobra::kernel {

// -- Partitioning -----------------------------------------------------------
//
// A logical BAT is partitioned into N shards by contiguous row ranges whose
// boundaries lie on multiples of an alignment quantum (the default equals
// ExecContext::kDefaultMorselRows). Range partitioning — ROADMAP item 1
// allows "oid range or hash" — is what keeps scatter-gather byte-identical
// to the single-catalog plan:
//
//   * the logical BAT is the concatenation of the shard slices in shard
//     order, so order-preserving operators (selects, joins, group) merge by
//     concatenation in shard order, with dictionary codes remapped through
//     Bat::Concat exactly as the morsel merges of PR 1 do;
//   * every shard boundary is a multiple of the alignment quantum, so when
//     the execution context's morsel size divides the quantum, the shard
//     slices tile the GLOBAL morsel grid. Floating-point reductions (Sum)
//     gather the per-morsel partials and refold them in global morsel
//     order — the exact left fold Bat::Sum(ctx) performs — instead of
//     folding per-shard scalars, which would reassociate the additions.
//
// Appends to a sharded BAT route to the LAST shard: earlier shard offsets
// stay aligned no matter how the tail grows.

/// Row range [begin, end) of one shard's slice of a logical BAT.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits `rows` into `shards` contiguous ranges with every boundary a
/// multiple of `align` (whole aligned blocks are distributed as evenly as
/// possible, earlier shards first; the final range takes the remainder).
std::vector<ShardRange> ShardRanges(size_t rows, size_t shards, size_t align);

/// A partitioned logical BAT: non-owning views of the per-shard slices, in
/// shard order. `offsets[k]` is the global row offset of slice k (the sum of
/// the earlier slice sizes). Valid only while the underlying BATs live.
struct ShardedBat {
  std::vector<const Bat*> slices;
  std::vector<size_t> offsets;
  TailType tail_type = TailType::kInt;

  size_t num_shards() const { return slices.size(); }
  size_t rows() const;
  /// True when every slice offset is a multiple of `quantum` — the
  /// precondition for refolding Sum on the global morsel grid.
  bool AlignedTo(size_t quantum) const;
};

/// An owning ephemeral partition of a BAT (the MIL `shards(n)` path and the
/// differential harness partition session values on the fly).
class PartitionedBat {
 public:
  /// Copies `bat` into `shards` aligned slices (see ShardRanges).
  PartitionedBat(const Bat& bat, size_t shards, size_t align);

  ShardedBat View() const;
  const Bat& slice(size_t k) const { return slices_[k]; }
  size_t num_shards() const { return slices_.size(); }

 private:
  std::vector<Bat> slices_;
  std::vector<size_t> offsets_;
  TailType tail_type_;
};

// -- Exchange operators -----------------------------------------------------
//
// Scatter-gather forms of the kernel operators: fan out one kernel call per
// shard slice (ParallelForEach over shards; each shard runs the existing
// morsel-parallel kernel under a per-shard context whose threadcnt is the
// caller's divided by the shard count) and merge deterministically in shard
// order. Each form is byte-identical to the corresponding single-BAT kernel
// call over the gathered input — including -0.0/NaN placement, tie
// resolution, and dictionary-code assignment — and reproduces the kernel's
// error checks in the same order with the same messages.
//
// When the context carries a trace sink, every exchange operator records an
// `exchange.scatter` span (the per-shard kernel spans nest under it) and an
// `exchange.merge` span, both under ctx.trace_parent.

/// Per-slice scan statistics — a zone map over one shard's slice of a
/// numeric BAT. `min`/`max` ignore NaN tails (SelectRange never matches a
/// NaN row); a slice of only-NaN rows has has_non_nan == false and is
/// always prunable.
struct ShardStats {
  uint64_t version = 0;  // Bat::version() the stats were computed at
  size_t rows = 0;
  bool has_non_nan = false;
  double min = 0.0;
  double max = 0.0;
};

struct ExchangeOptions {
  /// TEST SEAM — never enable outside tests. Skips the deterministic
  /// shard-order merge and concatenates the per-shard outputs in REVERSED
  /// shard order instead (the deterministic stand-in for an exchange that
  /// merges in completion order). The differential harness must catch it.
  bool unsafe_unordered_merge = false;
  /// Optional zone maps (one per shard, from ShardedCatalog::ScanStats or
  /// ComputeShardStats) enabling partition pruning in ShardedSelectRange:
  /// a shard whose [min, max] interval provably misses [lo, hi] is never
  /// scanned. Pruned shards contribute zero rows by construction, so the
  /// merged output is unchanged. Ignored by every other operator.
  const std::vector<ShardStats>* scan_stats = nullptr;
};

/// Zone maps for every slice of `sb`, computed by one scan per shard
/// (parallel across shards). Only meaningful for numeric tails.
std::vector<ShardStats> ComputeShardStats(const ShardedBat& sb,
                                          const ExecContext& ctx);

/// Gathers the slices back into one BAT (concat in shard order, dictionary
/// codes remapped) — the exchange that feeds a non-sharded consumer.
Bat GatherShards(const ShardedBat& sb, const ExecContext& ctx);

Result<Bat> ShardedSelectEq(const ShardedBat& sb, const Value& v,
                            const ExecContext& ctx,
                            const ExchangeOptions& opts = {});
Result<Bat> ShardedSelectRange(const ShardedBat& sb, double lo, double hi,
                               const ExecContext& ctx,
                               const ExchangeOptions& opts = {});
Result<Bat> ShardedSelectStr(const ShardedBat& sb, const std::string& s,
                             const ExecContext& ctx,
                             const ExchangeOptions& opts = {});

/// Join/Semijoin/Diff with the LEFT operand sharded and the right operand
/// broadcast (every shard probes the same build side — the classic
/// broadcast-join exchange).
Result<Bat> ShardedJoin(const ShardedBat& a, const Bat& b,
                        const ExecContext& ctx,
                        const ExchangeOptions& opts = {});
Result<Bat> ShardedSemijoin(const ShardedBat& a, const Bat& b,
                            const ExecContext& ctx,
                            const ExchangeOptions& opts = {});
Result<Bat> ShardedDiff(const ShardedBat& a, const Bat& b,
                        const ExecContext& ctx,
                        const ExchangeOptions& opts = {});

/// Aggregates. Sum refolds gathered per-morsel partials in global morsel
/// order when the shard offsets sit on the context's morsel grid (and
/// otherwise falls back to gather + kernel Sum, still byte-identical).
/// Min/Max/ArgMax combine per-shard results in shard order with the
/// kernel's NaN-skipping leftmost-winner rule, which is associative, so no
/// grid alignment is required. ArgMax returns the GLOBAL row position.
Result<double> ShardedSum(const ShardedBat& sb, const ExecContext& ctx,
                          const ExchangeOptions& opts = {});
Result<double> ShardedMin(const ShardedBat& sb, const ExecContext& ctx,
                          const ExchangeOptions& opts = {});
Result<double> ShardedMax(const ShardedBat& sb, const ExecContext& ctx,
                          const ExchangeOptions& opts = {});
Result<size_t> ShardedArgMax(const ShardedBat& sb, const ExecContext& ctx,
                             const ExchangeOptions& opts = {});

/// Sharded group-by: per-shard Group runs locally, then local dense ids are
/// remapped to global ids by walking shards in order and keying on
/// shard-portable canonical values (the string itself for str tails — local
/// dictionary codes do not transfer — and the -0.0-normalized bit pattern
/// otherwise), preserving global first-occurrence numbering.
/// `representatives`, when non-null, receives one GLOBAL position per group.
Result<Bat> ShardedGroup(const ShardedBat& sb,
                         std::vector<size_t>* representatives,
                         const ExecContext& ctx,
                         const ExchangeOptions& opts = {});

// -- ShardedCatalog ---------------------------------------------------------

/// N kernel catalogs behind one namespace — the deployment unit of the
/// scatter-gather layer. Every logical BAT exists in all shards (a slice
/// may be empty); `Put` partitions on the aligned grid, appends route to
/// the last shard, and `View` hands out the ShardedBat the exchange
/// operators consume.
///
/// Persistence is per shard and independent: `AttachStores` opens one
/// PersistentStore per shard under `dir/shard-<k>`, `Checkpoint` fans out
/// in parallel, and `Recover` rebuilds each shard from its own store — a
/// crash during shard k's checkpoint never involves any other shard's
/// files (they live in disjoint directories).
///
/// Thread-safety: the per-shard Catalogs carry their own locks; `mu_`
/// guards only this class's zone-map cache. Structural mutations (Put/
/// Create/Append/Drop) require external exclusive access, like Bat itself.
class ShardedCatalog {
 public:
  /// `align` is the partition quantum; the default matches the default
  /// morsel size, so default-context Sum always takes the scatter path.
  explicit ShardedCatalog(
      size_t num_shards, size_t align = ExecContext::kDefaultMorselRows);

  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t align() const { return align_; }
  Catalog* shard(size_t k) { return shards_[k].get(); }
  const Catalog* shard(size_t k) const { return shards_[k].get(); }

  /// Creates an empty BAT under `name` in every shard.
  Status Create(const std::string& name, TailType tail_type);
  /// Partitions `bat` across the shards (aligned ranges), replacing any
  /// previous binding.
  Status Put(const std::string& name, const Bat& bat);
  /// Appends one pair to the logical BAT (routed to the last shard).
  Status Append(const std::string& name, Oid head, const Value& tail);
  /// Drops the binding from every shard; NotFound if absent.
  Status Drop(const std::string& name);
  bool Exists(const std::string& name) const;

  /// The sharded view of a logical BAT (non-owning; valid until the next
  /// structural mutation of `name`).
  Result<ShardedBat> View(const std::string& name) const;
  /// The logical BAT materialized (gather in shard order).
  Result<Bat> Gather(const std::string& name, const ExecContext& ctx) const;
  /// Total rows of the logical BAT across all shards.
  Result<size_t> Rows(const std::string& name) const;

  /// Zone maps for `name`, one per shard, cached per Bat::version() and
  /// recomputed lazily after a mutation (self-organizing, like the kernel's
  /// accreted hash indexes). Feed into ExchangeOptions::scan_stats.
  Result<std::vector<ShardStats>> ScanStats(const std::string& name,
                                            const ExecContext& ctx) const
      COBRA_EXCLUDES(mu_);

  // -- Per-shard persistence ----------------------------------------------

  /// Opens one PersistentStore per shard under `dir/shard-<k>` and attaches
  /// each to its catalog for stats reporting.
  Status AttachStores(io::Fs* fs, const std::string& dir);
  /// Checkpoints every shard into its own store, fanned out in parallel
  /// (ParallelForEach over shards under `ctx`). `extra` is stored in every
  /// shard's snapshot. Requires AttachStores.
  Status Checkpoint(const ExecContext& ctx, std::string_view extra = "");
  /// Rebuilds every shard from its own store, fanned out in parallel.
  /// Recovery is per-shard and independent: shard k's outcome depends only
  /// on the files under `dir/shard-<k>`. Returns one RecoveryInfo per
  /// shard, in shard order. Requires AttachStores.
  Result<std::vector<PersistentStore::RecoveryInfo>> Recover(
      const ExecContext& ctx);

  PersistentStore* store(size_t k) { return stores_[k].get(); }

  /// Shard directory naming scheme, shared with discovery.
  static std::string ShardDir(const std::string& dir, size_t k);
  /// Number of consecutive `dir/shard-<k>` directories (k = 0, 1, ...)
  /// holding persisted state — how a recovering process learns the shard
  /// count of an existing deployment. 0 when none exist.
  static size_t DiscoverShardCount(const io::Fs& fs, const std::string& dir);

 private:
  const size_t align_;
  std::vector<std::unique_ptr<Catalog>> shards_;
  std::vector<std::unique_ptr<PersistentStore>> stores_;

  struct CachedStats {
    std::vector<uint64_t> versions;  // Bat::version() per shard at compute
    std::vector<ShardStats> stats;
  };
  mutable Mutex mu_;
  mutable std::map<std::string, CachedStats> scan_cache_ COBRA_GUARDED_BY(mu_);
};

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_SHARD_H_
