#include "image/histogram.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace cobra::image {

ColorHistogram ComputeHistogram(const Frame& frame, int bins) {
  COBRA_CHECK(bins > 0 && bins <= 256);
  ColorHistogram h;
  h.bins = bins;
  h.r.assign(bins, 0.0);
  h.g.assign(bins, 0.0);
  h.b.assign(bins, 0.0);
  const double total =
      static_cast<double>(frame.width()) * frame.height();
  if (total == 0) return h;
  const int shift_div = 256 / bins;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const Rgb p = frame.At(x, y);
      h.r[p.r / shift_div] += 1.0;
      h.g[p.g / shift_div] += 1.0;
      h.b[p.b / shift_div] += 1.0;
    }
  }
  for (auto* chan : {&h.r, &h.g, &h.b}) {
    for (double& v : *chan) v /= total;
  }
  return h;
}

double HistogramDistance(const ColorHistogram& a, const ColorHistogram& b) {
  COBRA_CHECK(a.bins == b.bins);
  double d = 0.0;
  for (int i = 0; i < a.bins; ++i) {
    d += std::abs(a.r[i] - b.r[i]);
    d += std::abs(a.g[i] - b.g[i]);
    d += std::abs(a.b[i] - b.b[i]);
  }
  return d;
}

double PixelDifference(const Frame& a, const Frame& b) {
  COBRA_CHECK(a.width() == b.width() && a.height() == b.height());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      acc += std::abs(Luma(a.At(x, y)) - Luma(b.At(x, y)));
    }
  }
  return acc / (255.0 * a.width() * a.height());
}

std::vector<double> BlockMotion(const Frame& a, const Frame& b, int grid_x,
                                int grid_y) {
  COBRA_CHECK(a.width() == b.width() && a.height() == b.height());
  COBRA_CHECK(grid_x > 0 && grid_y > 0);
  std::vector<double> out(static_cast<size_t>(grid_x) * grid_y, 0.0);
  if (a.empty()) return out;
  const int bw = std::max(1, a.width() / grid_x);
  const int bh = std::max(1, a.height() / grid_y);
  for (int gy = 0; gy < grid_y; ++gy) {
    for (int gx = 0; gx < grid_x; ++gx) {
      const int x0 = gx * bw;
      const int y0 = gy * bh;
      const int x1 = (gx == grid_x - 1) ? a.width() : (x0 + bw);
      const int y1 = (gy == grid_y - 1) ? a.height() : (y0 + bh);
      double acc = 0.0;
      int count = 0;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          acc += std::abs(Luma(a.At(x, y)) - Luma(b.At(x, y)));
          ++count;
        }
      }
      out[static_cast<size_t>(gy) * grid_x + gx] =
          count > 0 ? acc / (255.0 * count) : 0.0;
    }
  }
  return out;
}

}  // namespace cobra::image
