#ifndef COBRA_IMAGE_FRAME_H_
#define COBRA_IMAGE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cobra::image {

/// An 8-bit RGB triple.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  friend bool operator==(const Rgb&, const Rgb&) = default;
};

/// Luma (ITU-R 601) of a pixel in [0, 255].
inline double Luma(const Rgb& p) {
  return 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
}

/// An interleaved RGB8 raster. This is the only image representation in the
/// library; the race renderer produces Frames and every visual/text analysis
/// consumes them. Frames at the paper's working resolution are 384x288
/// (quarter PAL).
class Frame {
 public:
  Frame() = default;
  /// Creates a width x height frame filled with `fill`.
  Frame(int width, int height, Rgb fill = Rgb{0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  /// Unchecked pixel access; (x, y) must be inside the raster.
  Rgb At(int x, int y) const {
    const size_t i = Index(x, y);
    return Rgb{data_[i], data_[i + 1], data_[i + 2]};
  }
  void Set(int x, int y, Rgb p) {
    const size_t i = Index(x, y);
    data_[i] = p.r;
    data_[i + 1] = p.g;
    data_[i + 2] = p.b;
  }

  /// True if (x, y) lies inside the raster.
  bool Contains(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Returns a copy of the axis-aligned sub-rectangle clipped to the frame.
  Frame Crop(int x, int y, int w, int h) const;

  /// Nearest-neighbour resize to (new_w, new_h).
  Frame ResizeNearest(int new_w, int new_h) const;

  /// Bilinear resize to (new_w, new_h); this implements the 4x text-region
  /// magnification of the paper's refinement step when called with 4*w, 4*h.
  Frame ResizeBilinear(int new_w, int new_h) const;

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>& mutable_data() { return data_; }

 private:
  size_t Index(int x, int y) const {
    return (static_cast<size_t>(y) * static_cast<size_t>(width_) +
            static_cast<size_t>(x)) *
           3;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> data_;
};

/// Pixel-wise temporal minimum of intensity over `frames` (all same size).
/// The paper's text refinement filters text regions by minimizing pixel
/// intensities over several consecutive frames to separate characters from
/// the moving background.
Frame MinIntensityFilter(const std::vector<Frame>& frames);

}  // namespace cobra::image

#endif  // COBRA_IMAGE_FRAME_H_
