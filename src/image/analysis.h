#ifndef COBRA_IMAGE_ANALYSIS_H_
#define COBRA_IMAGE_ANALYSIS_H_

#include <vector>

#include "image/frame.h"

namespace cobra::image {

/// An inclusive axis-aligned pixel box.
struct Box {
  int x0 = 0;
  int y0 = 0;
  int x1 = -1;  // inclusive; empty when x1 < x0
  int y1 = -1;

  bool IsEmpty() const { return x1 < x0 || y1 < y0; }
  int Width() const { return IsEmpty() ? 0 : x1 - x0 + 1; }
  int Height() const { return IsEmpty() ? 0 : y1 - y0 + 1; }
  int Area() const { return Width() * Height(); }
};

/// Inclusive RGB color range predicate.
struct ColorRange {
  uint8_t r_min = 0, r_max = 255;
  uint8_t g_min = 0, g_max = 255;
  uint8_t b_min = 0, b_max = 255;

  bool Matches(const Rgb& p) const {
    return p.r >= r_min && p.r <= r_max && p.g >= g_min && p.g <= g_max &&
           p.b >= b_min && p.b <= b_max;
  }
};

/// Fraction of pixels in `frame` matching `range` — the paper's sand/dust
/// cue filters the RGB image for those colors and computes a probability.
double ColorFraction(const Frame& frame, const ColorRange& range);

/// Binary mask (width*height, row-major) of pixels matching `range`.
std::vector<uint8_t> ColorMask(const Frame& frame, const ColorRange& range);

/// Bounding box of set pixels in `mask`; empty box if none.
Box MaskBoundingBox(const std::vector<uint8_t>& mask, int width, int height);

/// Density of set pixels inside `box` (0 for an empty box).
double MaskDensityInBox(const std::vector<uint8_t>& mask, int width,
                        const Box& box);

/// Detects the semaphore gantry: a dense rectangular region of red pixels
/// (the start lights touch each other, so the region reads as one rectangle
/// whose horizontal dimension grows as lights come on). Returns the box and
/// density via out-params and true when a sufficiently dense region exists.
bool DetectRedRectangle(const Frame& frame, Box* box, double* density);

/// Mean luma over the frame in [0, 255].
double MeanLuma(const Frame& frame);

/// Mean luma and luma variance restricted to a box.
void LumaStatsInBox(const Frame& frame, const Box& box, double* mean,
                    double* variance);

}  // namespace cobra::image

#endif  // COBRA_IMAGE_ANALYSIS_H_
