#ifndef COBRA_IMAGE_DRAW_H_
#define COBRA_IMAGE_DRAW_H_

#include "base/rng.h"
#include "image/frame.h"

namespace cobra::image {

/// Fills the axis-aligned rectangle [x, x+w) x [y, y+h), clipped to `frame`.
void FillRect(Frame& frame, int x, int y, int w, int h, Rgb color);

/// Alpha-blends `color` over the rectangle with opacity in [0, 1]; used for
/// the shaded caption background the broadcaster puts under superimposed
/// text.
void BlendRect(Frame& frame, int x, int y, int w, int h, Rgb color,
               double opacity);

/// Adds zero-mean Gaussian noise with the given stddev (in 8-bit counts) to
/// every channel of every pixel.
void AddGaussianNoise(Frame& frame, double stddev, cobra::Rng& rng);

/// Fills the whole frame with per-pixel uniform noise in [lo, hi] per
/// channel (crowd/track texture).
void FillNoise(Frame& frame, uint8_t lo, uint8_t hi, cobra::Rng& rng);

}  // namespace cobra::image

#endif  // COBRA_IMAGE_DRAW_H_
