#include "image/draw.h"

#include <algorithm>
#include <cmath>

namespace cobra::image {
namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
}

}  // namespace

void FillRect(Frame& frame, int x, int y, int w, int h, Rgb color) {
  const int x0 = std::max(0, x);
  const int y0 = std::max(0, y);
  const int x1 = std::min(frame.width(), x + w);
  const int y1 = std::min(frame.height(), y + h);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) frame.Set(xx, yy, color);
  }
}

void BlendRect(Frame& frame, int x, int y, int w, int h, Rgb color,
               double opacity) {
  const double a = std::clamp(opacity, 0.0, 1.0);
  const int x0 = std::max(0, x);
  const int y0 = std::max(0, y);
  const int x1 = std::min(frame.width(), x + w);
  const int y1 = std::min(frame.height(), y + h);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) {
      const Rgb p = frame.At(xx, yy);
      frame.Set(xx, yy,
                Rgb{ClampByte(p.r * (1 - a) + color.r * a),
                    ClampByte(p.g * (1 - a) + color.g * a),
                    ClampByte(p.b * (1 - a) + color.b * a)});
    }
  }
}

void AddGaussianNoise(Frame& frame, double stddev, cobra::Rng& rng) {
  auto& data = frame.mutable_data();
  for (uint8_t& byte : data) {
    byte = ClampByte(byte + rng.Gaussian(0.0, stddev));
  }
}

void FillNoise(Frame& frame, uint8_t lo, uint8_t hi, cobra::Rng& rng) {
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const uint8_t v = static_cast<uint8_t>(
          rng.UniformInt(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
      frame.Set(x, y, Rgb{v, v, v});
    }
  }
}

}  // namespace cobra::image
