#include "image/frame.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace cobra::image {

Frame::Frame(int width, int height, Rgb fill)
    : width_(width), height_(height) {
  COBRA_CHECK(width >= 0 && height >= 0);
  data_.resize(static_cast<size_t>(width) * static_cast<size_t>(height) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) Set(x, y, fill);
  }
}

Frame Frame::Crop(int x, int y, int w, int h) const {
  const int x0 = std::max(0, x);
  const int y0 = std::max(0, y);
  const int x1 = std::min(width_, x + w);
  const int y1 = std::min(height_, y + h);
  const int cw = std::max(0, x1 - x0);
  const int ch = std::max(0, y1 - y0);
  Frame out(cw, ch);
  for (int yy = 0; yy < ch; ++yy) {
    for (int xx = 0; xx < cw; ++xx) out.Set(xx, yy, At(x0 + xx, y0 + yy));
  }
  return out;
}

Frame Frame::ResizeNearest(int new_w, int new_h) const {
  COBRA_CHECK(new_w > 0 && new_h > 0);
  COBRA_CHECK(!empty());
  Frame out(new_w, new_h);
  for (int y = 0; y < new_h; ++y) {
    const int sy = std::min(height_ - 1, y * height_ / new_h);
    for (int x = 0; x < new_w; ++x) {
      const int sx = std::min(width_ - 1, x * width_ / new_w);
      out.Set(x, y, At(sx, sy));
    }
  }
  return out;
}

Frame Frame::ResizeBilinear(int new_w, int new_h) const {
  COBRA_CHECK(new_w > 0 && new_h > 0);
  COBRA_CHECK(!empty());
  Frame out(new_w, new_h);
  const double sx_scale =
      new_w > 1 ? static_cast<double>(width_ - 1) / (new_w - 1) : 0.0;
  const double sy_scale =
      new_h > 1 ? static_cast<double>(height_ - 1) / (new_h - 1) : 0.0;
  for (int y = 0; y < new_h; ++y) {
    const double fy = y * sy_scale;
    const int y0 = static_cast<int>(fy);
    const int y1 = std::min(height_ - 1, y0 + 1);
    const double wy = fy - y0;
    for (int x = 0; x < new_w; ++x) {
      const double fx = x * sx_scale;
      const int x0 = static_cast<int>(fx);
      const int x1 = std::min(width_ - 1, x0 + 1);
      const double wx = fx - x0;
      const Rgb p00 = At(x0, y0);
      const Rgb p10 = At(x1, y0);
      const Rgb p01 = At(x0, y1);
      const Rgb p11 = At(x1, y1);
      auto lerp = [&](uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
        const double top = a * (1.0 - wx) + b * wx;
        const double bot = c * (1.0 - wx) + d * wx;
        return static_cast<uint8_t>(
            std::lround(std::clamp(top * (1.0 - wy) + bot * wy, 0.0, 255.0)));
      };
      out.Set(x, y,
              Rgb{lerp(p00.r, p10.r, p01.r, p11.r),
                  lerp(p00.g, p10.g, p01.g, p11.g),
                  lerp(p00.b, p10.b, p01.b, p11.b)});
    }
  }
  return out;
}

Frame MinIntensityFilter(const std::vector<Frame>& frames) {
  COBRA_CHECK(!frames.empty());
  Frame out = frames[0];
  for (size_t f = 1; f < frames.size(); ++f) {
    const Frame& cur = frames[f];
    COBRA_CHECK(cur.width() == out.width() && cur.height() == out.height());
    for (int y = 0; y < out.height(); ++y) {
      for (int x = 0; x < out.width(); ++x) {
        const Rgb a = out.At(x, y);
        const Rgb b = cur.At(x, y);
        // Keep the darker pixel (by luma): background motion is bright noise
        // relative to the stable dark shading under the caption.
        if (Luma(b) < Luma(a)) out.Set(x, y, b);
      }
    }
  }
  return out;
}

}  // namespace cobra::image
