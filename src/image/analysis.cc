#include "image/analysis.h"

#include <algorithm>

#include "base/logging.h"

namespace cobra::image {

double ColorFraction(const Frame& frame, const ColorRange& range) {
  if (frame.empty()) return 0.0;
  size_t count = 0;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      if (range.Matches(frame.At(x, y))) ++count;
    }
  }
  return static_cast<double>(count) /
         (static_cast<double>(frame.width()) * frame.height());
}

std::vector<uint8_t> ColorMask(const Frame& frame, const ColorRange& range) {
  std::vector<uint8_t> mask(
      static_cast<size_t>(frame.width()) * frame.height(), 0);
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      mask[static_cast<size_t>(y) * frame.width() + x] =
          range.Matches(frame.At(x, y)) ? 1 : 0;
    }
  }
  return mask;
}

Box MaskBoundingBox(const std::vector<uint8_t>& mask, int width, int height) {
  COBRA_CHECK(static_cast<size_t>(width) * height == mask.size());
  Box box;
  box.x0 = width;
  box.y0 = height;
  box.x1 = -1;
  box.y1 = -1;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (mask[static_cast<size_t>(y) * width + x] == 0) continue;
      box.x0 = std::min(box.x0, x);
      box.y0 = std::min(box.y0, y);
      box.x1 = std::max(box.x1, x);
      box.y1 = std::max(box.y1, y);
    }
  }
  return box;
}

double MaskDensityInBox(const std::vector<uint8_t>& mask, int width,
                        const Box& box) {
  if (box.IsEmpty()) return 0.0;
  size_t count = 0;
  for (int y = box.y0; y <= box.y1; ++y) {
    for (int x = box.x0; x <= box.x1; ++x) {
      if (mask[static_cast<size_t>(y) * width + x] != 0) ++count;
    }
  }
  return static_cast<double>(count) / box.Area();
}

bool DetectRedRectangle(const Frame& frame, Box* box, double* density) {
  // Strong red with suppressed green/blue; matches the renderer's start
  // lights while rejecting sand (red+green) and generic track noise.
  const ColorRange red{.r_min = 170, .g_max = 90, .b_max = 90};
  const auto mask = ColorMask(frame, red);
  const Box bb = MaskBoundingBox(mask, frame.width(), frame.height());
  if (box != nullptr) *box = bb;
  if (bb.IsEmpty() || bb.Area() < 24) {
    if (density != nullptr) *density = 0.0;
    return false;
  }
  const double d = MaskDensityInBox(mask, frame.width(), bb);
  if (density != nullptr) *density = d;
  // A lit semaphore bank is a compact block: dense and wider than tall.
  return d > 0.55 && bb.Width() >= bb.Height();
}

double MeanLuma(const Frame& frame) {
  if (frame.empty()) return 0.0;
  double acc = 0.0;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) acc += Luma(frame.At(x, y));
  }
  return acc / (static_cast<double>(frame.width()) * frame.height());
}

void LumaStatsInBox(const Frame& frame, const Box& box, double* mean,
                    double* variance) {
  COBRA_CHECK(mean != nullptr && variance != nullptr);
  *mean = 0.0;
  *variance = 0.0;
  if (box.IsEmpty()) return;
  double acc = 0.0;
  double acc2 = 0.0;
  int count = 0;
  for (int y = std::max(0, box.y0); y <= std::min(frame.height() - 1, box.y1);
       ++y) {
    for (int x = std::max(0, box.x0); x <= std::min(frame.width() - 1, box.x1);
         ++x) {
      const double l = Luma(frame.At(x, y));
      acc += l;
      acc2 += l * l;
      ++count;
    }
  }
  if (count == 0) return;
  *mean = acc / count;
  *variance = std::max(0.0, acc2 / count - (*mean) * (*mean));
}

}  // namespace cobra::image
