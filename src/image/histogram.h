#ifndef COBRA_IMAGE_HISTOGRAM_H_
#define COBRA_IMAGE_HISTOGRAM_H_

#include <array>
#include <vector>

#include "image/frame.h"

namespace cobra::image {

/// Per-channel color histogram with `bins` buckets per channel, normalized
/// to sum to 1 per channel.
struct ColorHistogram {
  int bins = 0;
  std::vector<double> r;
  std::vector<double> g;
  std::vector<double> b;
};

/// Computes the color histogram of `frame` with the given bin count.
ColorHistogram ComputeHistogram(const Frame& frame, int bins = 32);

/// L1 distance between two histograms (same bin count), in [0, 2] per
/// channel summed over channels -> [0, 6]; used by shot boundary detection.
double HistogramDistance(const ColorHistogram& a, const ColorHistogram& b);

/// Mean absolute luma difference per pixel between consecutive frames,
/// normalized to [0, 1]. The paper uses pixel color difference between two
/// consecutive frames as the motion-amount cue (start detection, f13).
double PixelDifference(const Frame& a, const Frame& b);

/// Per-block mean absolute luma difference between two frames on a
/// grid of (grid_x x grid_y) blocks, each value normalized to [0, 1]. This
/// is the "motion histogram" used for the passing cue and DVE matching.
std::vector<double> BlockMotion(const Frame& a, const Frame& b, int grid_x,
                                int grid_y);

}  // namespace cobra::image

#endif  // COBRA_IMAGE_HISTOGRAM_H_
