#include "image/font.h"

#include <array>
#include <cctype>

namespace cobra::image {
namespace {

// Each glyph is 7 rows of 5 columns; '#' is ink.
struct Glyph {
  char c;
  const char* rows[7];
};

constexpr Glyph kGlyphs[] = {
    {'A', {" ### ", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"}},
    {'B', {"#### ", "#   #", "#   #", "#### ", "#   #", "#   #", "#### "}},
    {'C', {" ### ", "#   #", "#    ", "#    ", "#    ", "#   #", " ### "}},
    {'D', {"#### ", "#   #", "#   #", "#   #", "#   #", "#   #", "#### "}},
    {'E', {"#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#####"}},
    {'F', {"#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#    "}},
    {'G', {" ### ", "#   #", "#    ", "# ###", "#   #", "#   #", " ### "}},
    {'H', {"#   #", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"}},
    {'I', {" ### ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}},
    {'J', {"  ###", "   # ", "   # ", "   # ", "   # ", "#  # ", " ##  "}},
    {'K', {"#   #", "#  # ", "# #  ", "##   ", "# #  ", "#  # ", "#   #"}},
    {'L', {"#    ", "#    ", "#    ", "#    ", "#    ", "#    ", "#####"}},
    {'M', {"#   #", "## ##", "# # #", "# # #", "#   #", "#   #", "#   #"}},
    {'N', {"#   #", "##  #", "# # #", "#  ##", "#   #", "#   #", "#   #"}},
    {'O', {" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "}},
    {'P', {"#### ", "#   #", "#   #", "#### ", "#    ", "#    ", "#    "}},
    {'Q', {" ### ", "#   #", "#   #", "#   #", "# # #", "#  # ", " ## #"}},
    {'R', {"#### ", "#   #", "#   #", "#### ", "# #  ", "#  # ", "#   #"}},
    {'S', {" ####", "#    ", "#    ", " ### ", "    #", "    #", "#### "}},
    {'T', {"#####", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "}},
    {'U', {"#   #", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "}},
    {'V', {"#   #", "#   #", "#   #", "#   #", "#   #", " # # ", "  #  "}},
    {'W', {"#   #", "#   #", "#   #", "# # #", "# # #", "## ##", "#   #"}},
    {'X', {"#   #", "#   #", " # # ", "  #  ", " # # ", "#   #", "#   #"}},
    {'Y', {"#   #", "#   #", " # # ", "  #  ", "  #  ", "  #  ", "  #  "}},
    {'Z', {"#####", "    #", "   # ", "  #  ", " #   ", "#    ", "#####"}},
    {'0', {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "}},
    {'1', {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}},
    {'2', {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"}},
    {'3', {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "}},
    {'4', {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "}},
    {'5', {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "}},
    {'6', {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "}},
    {'7', {"#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "}},
    {'8', {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "}},
    {'9', {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "}},
    {'.', {"     ", "     ", "     ", "     ", "     ", " ##  ", " ##  "}},
    {'-', {"     ", "     ", "     ", "#####", "     ", "     ", "     "}},
    {':', {"     ", " ##  ", " ##  ", "     ", " ##  ", " ##  ", "     "}},
    {' ', {"     ", "     ", "     ", "     ", "     ", "     ", "     "}},
};

const Glyph* FindGlyph(char c) {
  const char u =
      static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  for (const Glyph& g : kGlyphs) {
    if (g.c == u) return &g;
  }
  return nullptr;
}

}  // namespace

const BitmapFont& BitmapFont::Get() {
  static const BitmapFont* const kFont = new BitmapFont();
  return *kFont;
}

bool BitmapFont::HasGlyph(char c) const { return FindGlyph(c) != nullptr; }

bool BitmapFont::Pixel(char c, int col, int row) const {
  const Glyph* g = FindGlyph(c);
  if (g == nullptr || col < 0 || col >= kGlyphWidth || row < 0 ||
      row >= kGlyphHeight) {
    return false;
  }
  return g->rows[row][col] == '#';
}

void BitmapFont::Draw(Frame& frame, std::string_view text, int x, int y,
                      int scale, Rgb color) const {
  int cx = x;
  for (char c : text) {
    for (int row = 0; row < kGlyphHeight; ++row) {
      for (int col = 0; col < kGlyphWidth; ++col) {
        if (!Pixel(c, col, row)) continue;
        for (int dy = 0; dy < scale; ++dy) {
          for (int dx = 0; dx < scale; ++dx) {
            const int px = cx + col * scale + dx;
            const int py = y + row * scale + dy;
            if (frame.Contains(px, py)) frame.Set(px, py, color);
          }
        }
      }
    }
    cx += (kGlyphWidth + 1) * scale;
  }
}

int BitmapFont::TextWidth(std::string_view text, int scale) const {
  if (text.empty()) return 0;
  return static_cast<int>(text.size()) * (kGlyphWidth + 1) * scale - scale;
}

Frame BitmapFont::RenderPattern(std::string_view text, int scale) const {
  const int w = TextWidth(text, scale);
  const int h = kGlyphHeight * scale;
  Frame out(std::max(1, w), std::max(1, h), Rgb{0, 0, 0});
  Draw(out, text, 0, 0, scale, Rgb{255, 255, 255});
  return out;
}

}  // namespace cobra::image
