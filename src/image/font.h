#ifndef COBRA_IMAGE_FONT_H_
#define COBRA_IMAGE_FONT_H_

#include <string>
#include <string_view>

#include "image/frame.h"

namespace cobra::image {

/// Fixed 5x7 bitmap font covering A-Z, 0-9, space, '.', '-' and ':'.
/// The race renderer draws superimposed captions with it and the text
/// recognizer renders its reference patterns from the very same glyphs, so
/// recognition difficulty comes from background, noise and scaling rather
/// than from a font mismatch — matching the paper's setup where reference
/// patterns are extracted from the broadcast itself.
class BitmapFont {
 public:
  static constexpr int kGlyphWidth = 5;
  static constexpr int kGlyphHeight = 7;

  /// Returns the process-wide font instance.
  static const BitmapFont& Get();

  /// True if the font has a glyph for `c` (after ASCII upper-casing).
  bool HasGlyph(char c) const;

  /// True if glyph row `row` (0..6) has an ink pixel in column `col` (0..4).
  /// Unknown characters render as empty.
  bool Pixel(char c, int col, int row) const;

  /// Draws `text` starting at (x, y) with integer `scale` (pixels per font
  /// pixel) and 1-scaled-pixel inter-character spacing.
  void Draw(Frame& frame, std::string_view text, int x, int y, int scale,
            Rgb color) const;

  /// Width in pixels of `text` drawn at `scale`.
  int TextWidth(std::string_view text, int scale) const;

  /// Renders `text` white-on-black into a tight frame at `scale`; used by
  /// the recognizer to build reference patterns.
  Frame RenderPattern(std::string_view text, int scale) const;

 private:
  BitmapFont() = default;
};

}  // namespace cobra::image

#endif  // COBRA_IMAGE_FONT_H_
