#include "text/text_recognize.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace cobra::text {
namespace {

/// Nearest-neighbour resize of a binary mask.
InkMask ResizeMask(const InkMask& in, int new_w, int new_h) {
  InkMask out;
  out.width = new_w;
  out.height = new_h;
  out.ink.assign(static_cast<size_t>(new_w) * new_h, 0);
  if (in.width == 0 || in.height == 0) return out;
  for (int y = 0; y < new_h; ++y) {
    const int sy = std::min(in.height - 1, y * in.height / new_h);
    for (int x = 0; x < new_w; ++x) {
      const int sx = std::min(in.width - 1, x * in.width / new_w);
      out.ink[static_cast<size_t>(y) * new_w + x] =
          in.ink[static_cast<size_t>(sy) * in.width + sx];
    }
  }
  return out;
}

InkMask MaskFromFrame(const image::Frame& frame, double luma_threshold) {
  InkMask mask;
  mask.width = frame.width();
  mask.height = frame.height();
  mask.ink.assign(static_cast<size_t>(mask.width) * mask.height, 0);
  for (int y = 0; y < mask.height; ++y) {
    for (int x = 0; x < mask.width; ++x) {
      mask.ink[static_cast<size_t>(y) * mask.width + x] =
          image::Luma(frame.At(x, y)) > luma_threshold ? 1 : 0;
    }
  }
  return mask;
}

/// Extracts the sub-mask covering [x0,x1]x[y0,y1] (inclusive).
InkMask SubMask(const InkMask& in, int x0, int y0, int x1, int y1) {
  InkMask out;
  out.width = x1 - x0 + 1;
  out.height = y1 - y0 + 1;
  out.ink.assign(static_cast<size_t>(out.width) * out.height, 0);
  for (int y = 0; y < out.height; ++y) {
    for (int x = 0; x < out.width; ++x) {
      out.ink[static_cast<size_t>(y) * out.width + x] =
          in.ink[static_cast<size_t>(y0 + y) * in.width + (x0 + x)];
    }
  }
  return out;
}

}  // namespace

InkMask BinarizeRegion(const image::Frame& region, double luma_threshold) {
  return MaskFromFrame(region, luma_threshold);
}

TextRecognizer::TextRecognizer(std::vector<std::string> vocabulary,
                               const Options& options)
    : options_(options), vocabulary_(std::move(vocabulary)) {
  const auto& font = image::BitmapFont::Get();
  const int scale =
      std::max(1, options_.canon_height / image::BitmapFont::kGlyphHeight);
  references_.reserve(vocabulary_.size());
  for (const auto& word : vocabulary_) {
    Reference ref;
    ref.word = word;
    ref.char_count = static_cast<int>(word.size());
    const image::Frame pattern = font.RenderPattern(word, scale);
    ref.mask = MaskFromFrame(pattern, 128.0);
    references_.push_back(std::move(ref));
  }
}

std::vector<std::vector<CharCell>> TextRecognizer::SegmentWords(
    const InkMask& mask) const {
  std::vector<std::vector<CharCell>> words;
  if (mask.width == 0 || mask.height == 0) return words;

  // Horizontal projection: find text line bands (rows containing ink).
  std::vector<int> row_ink(mask.height, 0);
  for (int y = 0; y < mask.height; ++y) {
    for (int x = 0; x < mask.width; ++x) {
      row_ink[y] += mask.ink[static_cast<size_t>(y) * mask.width + x];
    }
  }
  struct Line {
    int y0, y1;
  };
  std::vector<Line> lines;
  int line_start = -1;
  for (int y = 0; y <= mask.height; ++y) {
    const bool has = y < mask.height && row_ink[y] > 0;
    if (has && line_start < 0) line_start = y;
    if (!has && line_start >= 0) {
      if (y - line_start >= 4) lines.push_back({line_start, y - 1});
      line_start = -1;
    }
  }

  const int min_col_ink = std::max(
      1, static_cast<int>(options_.column_ink_fraction * mask.height));

  for (const Line& line : lines) {
    // Vertical projection restricted to the line band.
    std::vector<int> col_ink(mask.width, 0);
    for (int x = 0; x < mask.width; ++x) {
      for (int y = line.y0; y <= line.y1; ++y) {
        col_ink[x] += mask.ink[static_cast<size_t>(y) * mask.width + x];
      }
    }
    // Pass 1: raw runs of ink columns.
    struct Run {
      int x0, x1;
    };
    std::vector<Run> runs;
    int run_start = -1;
    for (int x = 0; x <= mask.width; ++x) {
      const bool has = x < mask.width && col_ink[x] >= min_col_ink;
      if (has && run_start < 0) run_start = x;
      if (!has && run_start >= 0) {
        runs.push_back(Run{run_start, x - 1});
        run_start = -1;
      }
    }
    // Pass 2: merge runs split by brief sub-threshold columns into
    // characters, then group characters into words by gap size.
    const size_t first_word_of_line = words.size();
    std::vector<CharCell> current_word;
    auto flush_word = [&]() {
      if (!current_word.empty()) words.push_back(std::move(current_word));
      current_word.clear();
    };
    for (const Run& run : runs) {
      const int gap = current_word.empty()
                          ? 0
                          : run.x0 - current_word.back().x1 - 1;
      if (!current_word.empty() && gap < options_.char_merge_columns) {
        current_word.back().x1 = run.x1;  // same character, resume stroke
        continue;
      }
      if (!current_word.empty() && gap >= options_.word_gap_columns) {
        flush_word();
      }
      CharCell cell;
      cell.x0 = run.x0;
      cell.x1 = run.x1;
      current_word.push_back(cell);
    }
    flush_word();
    // Pass 3: double vertical projection — per-character row bounds
    // (restricted to this line's words).
    for (size_t w = first_word_of_line; w < words.size(); ++w) {
      for (CharCell& cell : words[w]) {
        int cy0 = line.y1;
        int cy1 = line.y0;
        for (int yy = line.y0; yy <= line.y1; ++yy) {
          for (int xx = cell.x0; xx <= cell.x1; ++xx) {
            if (mask.ink[static_cast<size_t>(yy) * mask.width + xx] != 0) {
              cy0 = std::min(cy0, yy);
              cy1 = std::max(cy1, yy);
            }
          }
        }
        cell.y0 = cy0;
        cell.y1 = std::max(cy1, cy0);
      }
    }
  }
  return words;
}

namespace {

/// 3x3 dilation of a binary mask.
InkMask Dilate(const InkMask& in) {
  InkMask out = in;
  for (int y = 0; y < in.height; ++y) {
    for (int x = 0; x < in.width; ++x) {
      if (in.ink[static_cast<size_t>(y) * in.width + x] == 0) continue;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int yy = y + dy;
          const int xx = x + dx;
          if (yy >= 0 && yy < in.height && xx >= 0 && xx < in.width) {
            out.ink[static_cast<size_t>(yy) * in.width + xx] = 1;
          }
        }
      }
    }
  }
  return out;
}

/// Fraction of ink pixels of `a` that fall on (dilated) ink of `b`.
double InkCoverage(const InkMask& a, const InkMask& b_dilated) {
  size_t ink = 0;
  size_t covered = 0;
  for (size_t i = 0; i < a.ink.size(); ++i) {
    if (a.ink[i] == 0) continue;
    ++ink;
    if (b_dilated.ink[i] != 0) ++covered;
  }
  return ink > 0 ? static_cast<double>(covered) / ink : 0.0;
}

}  // namespace

double TextRecognizer::Similarity(const InkMask& region,
                                  const InkMask& reference) {
  if (reference.width == 0 || reference.height == 0) return 0.0;
  const InkMask scaled = ResizeMask(region, reference.width, reference.height);
  // Symmetric dilation-tolerant match: strict pixel intersection punishes
  // thin-stroke glyphs for sub-pixel misalignment after rescaling, so each
  // side's ink is scored against the other's 1-px neighbourhood and the
  // harmonic mean combines them.
  const double a_in_b = InkCoverage(scaled, Dilate(reference));
  const double b_in_a = InkCoverage(reference, Dilate(scaled));
  if (a_in_b + b_in_a <= 0.0) return 0.0;
  return 2.0 * a_in_b * b_in_a / (a_in_b + b_in_a);
}

std::vector<RecognizedWord> TextRecognizer::Recognize(
    const image::Frame& region) const {
  std::vector<RecognizedWord> out;
  const InkMask mask = BinarizeRegion(region, options_.binarize_luma);
  const auto words = SegmentWords(mask);
  for (const auto& cells : words) {
    if (cells.empty()) continue;
    int x0 = cells.front().x0;
    int x1 = cells.back().x1;
    int y0 = cells.front().y0;
    int y1 = cells.front().y1;
    for (const CharCell& c : cells) {
      y0 = std::min(y0, c.y0);
      y1 = std::max(y1, c.y1);
    }
    const InkMask word_mask = SubMask(mask, x0, y0, x1, y1);
    const int char_count = static_cast<int>(cells.size());

    // Length-bucketed pattern matching: only compare against references of
    // similar length (counting non-space characters per word token; the
    // vocabulary stores multi-word phrases as separate tokens upstream).
    const Reference* best = nullptr;
    double best_score = 0.0;
    for (const Reference& ref : references_) {
      if (std::abs(ref.char_count - char_count) > options_.length_tolerance) {
        continue;
      }
      const double s = Similarity(word_mask, ref.mask);
      if (s > best_score) {
        best_score = s;
        best = &ref;
      }
    }
    if (best != nullptr && best_score >= options_.accept_threshold) {
      out.push_back(RecognizedWord{best->word, best_score, x0, y0});
    }
  }
  return out;
}

}  // namespace cobra::text
