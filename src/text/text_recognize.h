#ifndef COBRA_TEXT_TEXT_RECOGNIZE_H_
#define COBRA_TEXT_TEXT_RECOGNIZE_H_

#include <string>
#include <vector>

#include "image/font.h"
#include "image/frame.h"

namespace cobra::text {

/// A recognized caption word.
struct RecognizedWord {
  std::string text;
  double score = 0.0;  // pattern-match similarity in [0, 1]
  int x = 0;           // left edge in the refined region
  int y = 0;           // top edge in the refined region
};

/// Binary ink mask of a region (row-major, 1 = ink).
struct InkMask {
  int width = 0;
  int height = 0;
  std::vector<uint8_t> ink;
};

/// Thresholds the refined RGB text region into an ink mask (bright
/// characters over the shaded background).
InkMask BinarizeRegion(const image::Frame& region, double luma_threshold = 150.0);

/// A segmented character cell (column range within a line).
struct CharCell {
  int x0 = 0, x1 = 0;  // inclusive column range
  int y0 = 0, y1 = 0;  // inclusive row range after the double projection
};

/// Pattern-matching word recognizer. Reference patterns are rendered from
/// the shared bitmap font. Since broadcast characters "are usually irregular
/// and can be occluded or deformed", matching is done on whole *word
/// regions* (characters grouped by pixel distance), bucketed by word length
/// to cut the search space, with a plain pixel-difference metric and an
/// acceptance threshold — exactly the paper's scheme.
class TextRecognizer {
 public:
  struct Options {
    /// Minimum white-pixel count for a column to count as ink in the
    /// vertical projection, as a fraction of region height.
    double column_ink_fraction = 0.02;
    /// Luma threshold separating character ink from the shaded band.
    double binarize_luma = 170.0;
    /// Column runs separated by less than this merge into one character
    /// (interpolation can briefly drop a glyph column under the ink
    /// threshold).
    int char_merge_columns = 5;
    /// Gap (in columns) separating two words; gaps between characters of
    /// one word are smaller. Measured on the 4x refined region.
    int word_gap_columns = 20;
    /// Words only match reference patterns whose character count differs by
    /// at most this much (the paper buckets by similar length).
    int length_tolerance = 1;
    /// Minimum similarity for a match.
    double accept_threshold = 0.62;
    /// Canonical size word regions are resized to before comparison.
    int canon_height = 28;
  };

  /// Builds a recognizer over a fixed vocabulary (driver names and
  /// informative words such as PIT STOP, FINAL LAP, WINNER...).
  TextRecognizer(std::vector<std::string> vocabulary, const Options& options);
  explicit TextRecognizer(std::vector<std::string> vocabulary)
      : TextRecognizer(std::move(vocabulary), Options()) {}

  /// Runs segmentation + matching over a refined text region.
  std::vector<RecognizedWord> Recognize(const image::Frame& region) const;

  /// Segments the mask into word regions (exposed for tests).
  std::vector<std::vector<CharCell>> SegmentWords(const InkMask& mask) const;

  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

 private:
  struct Reference {
    std::string word;
    int char_count = 0;
    InkMask mask;  // canonical-height rendering
  };

  /// Similarity in [0,1] between a word-region mask and a reference.
  static double Similarity(const InkMask& region, const InkMask& reference);

  Options options_;
  std::vector<std::string> vocabulary_;
  std::vector<Reference> references_;
};

}  // namespace cobra::text

#endif  // COBRA_TEXT_TEXT_RECOGNIZE_H_
