#include "text/text_detect.h"

#include <algorithm>

#include "image/analysis.h"

namespace cobra::text {

image::Frame TextDetector::CaptionBand(const image::Frame& frame) const {
  const int band_h = std::max(
      1, static_cast<int>(frame.height() * options_.bottom_fraction));
  return frame.Crop(0, frame.height() - band_h, frame.width(), band_h);
}

bool TextDetector::FrameHasText(const image::Frame& frame) const {
  const image::Frame band = CaptionBand(frame);
  if (band.empty()) return false;

  double sum = 0.0;
  double sum2 = 0.0;
  size_t bright = 0;
  const size_t total = static_cast<size_t>(band.width()) * band.height();
  for (int y = 0; y < band.height(); ++y) {
    for (int x = 0; x < band.width(); ++x) {
      const double l = image::Luma(band.At(x, y));
      sum += l;
      sum2 += l * l;
      if (l > options_.bright_luma) ++bright;
    }
  }
  const double mean = sum / total;
  const double variance = std::max(0.0, sum2 / total - mean * mean);
  const double bright_fraction = static_cast<double>(bright) / total;

  return mean < options_.max_band_luma &&
         bright_fraction >= options_.min_bright_fraction &&
         bright_fraction <= options_.max_bright_fraction &&
         variance >= options_.min_variance;
}

std::optional<image::Frame> TextDetector::Push(const image::Frame& frame) {
  if (FrameHasText(frame)) {
    segment_bands_.push_back(CaptionBand(frame));
    return std::nullopt;
  }
  return FinishSegment();
}

std::optional<image::Frame> TextDetector::Flush() { return FinishSegment(); }

std::optional<image::Frame> TextDetector::FinishSegment() {
  if (segment_bands_.size() < options_.min_duration_frames) {
    segment_bands_.clear();  // too short: skip, per the duration criterion
    return std::nullopt;
  }
  image::Frame refined = RefineTextRegion(segment_bands_);
  segment_bands_.clear();
  return refined;
}

image::Frame RefineTextRegion(const std::vector<image::Frame>& bands) {
  image::Frame filtered = image::MinIntensityFilter(bands);
  return filtered.ResizeBilinear(filtered.width() * 4, filtered.height() * 4);
}

}  // namespace cobra::text
