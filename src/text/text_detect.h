#ifndef COBRA_TEXT_TEXT_DETECT_H_
#define COBRA_TEXT_TEXT_DETECT_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "image/frame.h"

namespace cobra::text {

/// Detection of superimposed (graphic) text. The paper exploits the domain
/// property that captions sit in the bottom part of the picture on a shaded
/// (darkened) band with bright, high-contrast characters: step one finds the
/// shaded region per frame, step two applies duration and bright-pixel
/// criteria over consecutive frames.
class TextDetector {
 public:
  struct Options {
    /// Fraction of the frame height scanned at the bottom (matches the
    /// broadcaster's caption band).
    double bottom_fraction = 0.20;
    /// Shading: mean luma of the band must fall below this.
    double max_band_luma = 90.0;
    /// Characters: number of bright pixels (luma above bright_luma) in the
    /// band, as a fraction, must be in [min_bright, max_bright].
    double bright_luma = 180.0;
    double min_bright_fraction = 0.003;
    double max_bright_fraction = 0.30;
    /// Bright pixels must be structured, not noise: their luma variance
    /// inside the band must exceed this.
    double min_variance = 500.0;
    /// Frames the shaded region must persist before a segment is reported.
    size_t min_duration_frames = 3;
  };

  explicit TextDetector(const Options& options) : options_(options) {}
  TextDetector() : TextDetector(Options()) {}

  /// Per-frame check: does this frame carry a shaded caption band?
  bool FrameHasText(const image::Frame& frame) const;

  /// Returns the caption band sub-image of `frame`.
  image::Frame CaptionBand(const image::Frame& frame) const;

  /// Streaming use: push frames; when a run of caption frames ends (or
  /// `Flush` is called) a refined text region is emitted.
  /// Returns the refined (min-filtered, 4x magnified) region when the
  /// current segment just completed.
  std::optional<image::Frame> Push(const image::Frame& frame);
  std::optional<image::Frame> Flush();

  const Options& options() const { return options_; }

 private:
  std::optional<image::Frame> FinishSegment();

  Options options_;
  std::vector<image::Frame> segment_bands_;
};

/// The paper's refinement step: minimum-intensity filtering over the
/// segment's frames followed by 4x bilinear magnification.
image::Frame RefineTextRegion(const std::vector<image::Frame>& bands);

}  // namespace cobra::text

#endif  // COBRA_TEXT_TEXT_DETECT_H_
