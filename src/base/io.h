#ifndef COBRA_BASE_IO_H_
#define COBRA_BASE_IO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"

namespace cobra::io {

// -- Byte-order-stable encoding helpers ---------------------------------------
//
// Every on-disk structure (snapshot pages, WAL records, the model payload)
// is encoded with these little-endian primitives, so files written on one
// platform parse on any other and a torn byte is caught by the CRC, never by
// undefined behaviour in the reader.

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
/// Doubles travel as their IEEE-754 bit pattern (u64), so -0.0 and every NaN
/// payload round-trip exactly.
void PutF64(std::string* out, double v);
/// u32 length prefix + raw bytes.
void PutStr(std::string* out, std::string_view s);

/// Bounds-checked reader over an encoded byte string. Every Read* returns
/// false (and poisons the reader) instead of running past the end, so a
/// truncated or corrupted buffer yields a clean parse failure.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI64(int64_t* v);
  bool ReadF64(double* v);
  bool ReadStr(std::string* v);
  /// Exactly `n` raw bytes (no length prefix), e.g. a magic marker.
  bool ReadBytes(size_t n, std::string* v);

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }
  bool failed() const { return failed_; }

 private:
  bool Take(size_t n, const char** p);

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`.
uint32_t Crc32(std::string_view data);

// -- Filesystem abstraction ---------------------------------------------------

/// Append-only output file. The durability contract mirrors POSIX: bytes
/// handed to Append are not crash-durable until Sync returns OK.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The filesystem surface the persistence layer is written against. Keeping
/// it this narrow is what makes deterministic fault injection possible: the
/// recovery tests swap in FaultFs and fail the k-th write/fsync/rename
/// without touching the persistence code.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens `path` for writing; `truncate` starts empty, otherwise existing
  /// bytes are kept and writes append.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;
  virtual Result<std::string> ReadFile(const std::string& path) const = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) const = 0;
  /// Atomic replace: `to` is either its old content or `from`'s, never a mix.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) const = 0;
  /// Plain file names (not paths) directly under `dir`, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) const = 0;
  /// Creates `dir` (and missing parents); OK when it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;
  /// Makes `dir`'s entries crash-durable. On POSIX, fsync of a file covers
  /// its bytes but NOT its directory entry: a file created, renamed, or
  /// unlinked under `dir` is only guaranteed to survive power loss after
  /// the directory itself is fsynced. Callers publishing via
  /// NewWritableFile/Rename/DeleteFile must SyncDir before treating the
  /// namespace change as committed.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// The process-wide POSIX filesystem.
Fs* RealFilesystem();

/// In-memory filesystem for hermetic tests. Tracks, per file, how much of
/// the content has been Sync'd, and keeps a second, durable view of the
/// namespace that only SyncDir advances — so DropUnsynced() simulates both
/// the bytes-in-flight loss of a crash AND the loss of directory entries
/// (created/renamed/deleted files) that were never published with a
/// directory fsync. Thread-safe.
class MemFs : public Fs {
 public:
  MemFs() = default;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override COBRA_EXCLUDES(mu_);
  Result<std::string> ReadFile(const std::string& path) const override
      COBRA_EXCLUDES(mu_);
  Result<uint64_t> FileSize(const std::string& path) const override
      COBRA_EXCLUDES(mu_);
  Status Rename(const std::string& from, const std::string& to) override
      COBRA_EXCLUDES(mu_);
  Status DeleteFile(const std::string& path) override COBRA_EXCLUDES(mu_);
  bool Exists(const std::string& path) const override COBRA_EXCLUDES(mu_);
  Result<std::vector<std::string>> ListDir(const std::string& dir) const
      override COBRA_EXCLUDES(mu_);
  Status CreateDir(const std::string& dir) override COBRA_EXCLUDES(mu_);
  Status SyncDir(const std::string& dir) override COBRA_EXCLUDES(mu_);

  /// Crash simulation: rolls the namespace back to the last SyncDir-durable
  /// view (unpublished creates/renames/deletes revert), then discards every
  /// byte not covered by a successful Sync — exactly what a power loss does
  /// to the page cache and to unjournaled directory entries.
  void DropUnsynced() COBRA_EXCLUDES(mu_);

 protected:
  struct File {
    std::string data;
    size_t synced = 0;  // prefix length guaranteed durable
  };

  /// Low-level hooks the write handles call; FaultFs overrides these to
  /// inject write/fsync failures.
  virtual Status AppendTo(const std::shared_ptr<File>& file,
                          std::string_view data) COBRA_EXCLUDES(mu_);
  virtual Status SyncFile(const std::shared_ptr<File>& file)
      COBRA_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<File>> files_ COBRA_GUARDED_BY(mu_);
  /// The namespace as a crash would reveal it: entries published by the
  /// last SyncDir of their parent directory. Values alias `files_` objects.
  std::map<std::string, std::shared_ptr<File>> durable_files_
      COBRA_GUARDED_BY(mu_);
  std::set<std::string> dirs_ COBRA_GUARDED_BY(mu_);

 private:
  friend class MemWritableFile;
};

/// Deterministic fault-injection filesystem: MemFs plus a one-shot fault
/// plan. The k-th mutating operation of the armed kind fails with kIoError,
/// after which the "process" is considered crashed — every further mutation
/// fails — until Crash() drops unsynced bytes and revives the filesystem for
/// recovery. Counters let a harness size an exhaustive crash-point matrix.
class FaultFs : public MemFs {
 public:
  struct FaultPlan {
    enum class Mode {
      kNone,
      kFailWrite,   // k-th Append fails, nothing of it is written
      kTornWrite,   // k-th Append persists a seeded prefix, then fails
      kFailSync,    // k-th Sync fails (appended bytes stay volatile)
      kFailRename,  // k-th Rename fails, no replace happens
      kShortRead,   // k-th ReadFile returns a seeded strict prefix
    };
    Mode mode = Mode::kNone;
    int k = 0;          // 1-based index of the faulted operation
    uint64_t seed = 0;  // derives torn-write / short-read prefix lengths
  };

  struct OpCounts {
    int writes = 0;
    int syncs = 0;
    int renames = 0;
    int reads = 0;
  };

  void Arm(const FaultPlan& plan) COBRA_EXCLUDES(fault_mu_);
  /// Simulates the machine dying and restarting: unsynced bytes are lost,
  /// the crashed flag clears, the fault plan disarms, counters reset.
  void Crash() COBRA_EXCLUDES(fault_mu_);
  bool crashed() const COBRA_EXCLUDES(fault_mu_);
  OpCounts counts() const COBRA_EXCLUDES(fault_mu_);

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  /// Counted on the sync axis: the k-th fsync may be a directory fsync.
  Status SyncDir(const std::string& dir) override;

 protected:
  Status AppendTo(const std::shared_ptr<File>& file,
                  std::string_view data) override;
  Status SyncFile(const std::shared_ptr<File>& file) override;

 private:
  struct TripOutcome {
    bool fail = false;         // the operation must return kIoError
    bool armed_fault = false;  // this call is the armed k-th (not post-crash)
    FaultPlan::Mode mode = FaultPlan::Mode::kNone;  // armed mode that fired
    uint64_t seed = 0;         // derived prefix seed for torn/short modes
  };

  /// Bumps `counter` and decides this operation's fate: the armed k-th op of
  /// a matching mode fails (and, for mutating modes, crashes the fs); any
  /// mutating op after a crash fails; reads are never blocked by a crash.
  TripOutcome Trip(FaultPlan::Mode a, FaultPlan::Mode b, int* counter)
      COBRA_EXCLUDES(fault_mu_);

  mutable Mutex fault_mu_;
  FaultPlan plan_ COBRA_GUARDED_BY(fault_mu_);
  bool crashed_ COBRA_GUARDED_BY(fault_mu_) = false;
  mutable OpCounts counts_ COBRA_GUARDED_BY(fault_mu_);
};

}  // namespace cobra::io

#endif  // COBRA_BASE_IO_H_
