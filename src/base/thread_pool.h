#ifndef COBRA_BASE_THREAD_POOL_H_
#define COBRA_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cobra {

/// Fixed-size worker pool used by the kernel's parallel execution operator
/// and the parallel HMM evaluator (paper Fig. 3/4). Tasks are plain
/// std::function<void()>; waiting is done through WaitIdle() or the
/// ParallelFor helper.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on a worker thread.
  void Schedule(std::function<void()> task);

  /// Blocks until all scheduled tasks have completed.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [begin, end) across the pool and waits for
  /// completion. Work is split into contiguous chunks, one batch per worker.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace cobra

#endif  // COBRA_BASE_THREAD_POOL_H_
