#ifndef COBRA_BASE_THREAD_POOL_H_
#define COBRA_BASE_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace cobra {

/// Fixed-size worker pool used by the kernel's parallel execution operator
/// and the parallel HMM evaluator (paper Fig. 3/4). Tasks are plain
/// std::function<void()>.
///
/// Waiting for completion is done through a TaskGroup, which covers exactly
/// the tasks scheduled through it — two callers sharing one pool never wait
/// on each other's work. WaitIdle() remains for whole-pool barriers (e.g.
/// tests and shutdown) and blocks until *every* scheduled task is done.
///
/// Lock discipline (checked by the `lint` preset): `mu_` guards the task
/// queue, the active-task count, and the stop flag; both condition variables
/// are signalled under it.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on a worker thread.
  void Schedule(std::function<void()> task) COBRA_EXCLUDES(mu_);

  /// Blocks until all scheduled tasks (from every caller) have completed.
  /// Prefer TaskGroup when other threads may be using the same pool.
  void WaitIdle() COBRA_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  /// Runs fn(i) for i in [begin, end) across the pool and waits for
  /// completion of exactly those calls (via an internal TaskGroup). Work is
  /// split into contiguous chunks, one batch per worker. Safe to call from
  /// inside a pool task: the nested wait drains queued work instead of
  /// blocking a worker.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  friend class TaskGroup;

  /// Pops and runs one queued task on the calling thread. Returns false if
  /// the queue was empty. Used by TaskGroup waits on worker threads.
  bool RunOneQueuedTask() COBRA_EXCLUDES(mu_);

  void WorkerLoop() COBRA_EXCLUDES(mu_);

  /// Bookkeeping after a task ran: drops the active count and signals
  /// whole-pool idleness when nothing is queued or running.
  void FinishTask() COBRA_EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  std::queue<std::function<void()>> queue_ COBRA_GUARDED_BY(mu_);
  CondVar cv_task_;
  CondVar cv_idle_;
  size_t active_ COBRA_GUARDED_BY(mu_) = 0;
  bool stop_ COBRA_GUARDED_BY(mu_) = false;
};

/// A per-caller completion latch over a shared ThreadPool. Run() schedules a
/// task on the pool; Wait() blocks until all tasks Run() through *this group*
/// have finished, regardless of what other callers scheduled. When Wait() is
/// called from a pool worker (nested parallelism), the waiter executes queued
/// pool tasks instead of blocking, so nesting cannot deadlock the pool.
///
/// Run() and Wait() must be called from the owning thread only; the executed
/// tasks themselves may run anywhere. `mu_` guards the pending-task count;
/// task completions signal `cv_` under it.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  /// Waits for any still-pending tasks.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task` on the pool and tracks it in this group.
  void Run(std::function<void()> task) COBRA_EXCLUDES(mu_);

  /// Blocks until every task Run() through this group has completed.
  void Wait() COBRA_EXCLUDES(mu_);

 private:
  ThreadPool* pool_;
  Mutex mu_;
  CondVar cv_;
  size_t pending_ COBRA_GUARDED_BY(mu_) = 0;
};

}  // namespace cobra

#endif  // COBRA_BASE_THREAD_POOL_H_
