#include "base/thread_pool.h"

#include <algorithm>

#include "base/logging.h"

namespace cobra {
namespace {

/// Set for the lifetime of a worker thread; lets TaskGroup::Wait detect that
/// blocking would occupy a pool worker.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  COBRA_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!(queue_.empty() && active_ == 0)) cv_idle_.Wait(lock);
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::FinishTask() {
  MutexLock lock(mu_);
  --active_;
  if (queue_.empty() && active_ == 0) cv_idle_.NotifyAll();
}

bool ThreadPool::RunOneQueuedTask() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
    ++active_;
  }
  task();
  FinishTask();
  return true;
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, threads_.size());
  const size_t per_chunk = (n + chunks - 1) / chunks;
  TaskGroup group(this);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * per_chunk;
    const size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) break;
    group.Run([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.Wait();
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_task_.Wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    FinishTask();
  }
}

TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {
  COBRA_CHECK(pool != nullptr);
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Run(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Schedule([this, task = std::move(task)] {
    task();
    MutexLock lock(mu_);
    if (--pending_ == 0) cv_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  if (pool_->OnWorkerThread()) {
    // A worker blocking here would remove itself from the pool while its
    // own sub-tasks may still sit in the queue behind it — with every worker
    // doing so, nested parallelism deadlocks. Drain queued tasks instead;
    // once the queue is empty, the group's remaining tasks are executing on
    // other threads and a plain wait is safe (no new tasks can join the
    // group while its owner sits in Wait()).
    for (;;) {
      {
        MutexLock lock(mu_);
        if (pending_ == 0) return;
      }
      if (!pool_->RunOneQueuedTask()) {
        MutexLock lock(mu_);
        while (pending_ != 0) cv_.Wait(lock);
        return;
      }
    }
  }
  MutexLock lock(mu_);
  while (pending_ != 0) cv_.Wait(lock);
}

}  // namespace cobra
