#include "base/thread_pool.h"

#include <algorithm>

#include "base/logging.h"

namespace cobra {

ThreadPool::ThreadPool(size_t num_threads) {
  COBRA_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, threads_.size());
  const size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * per_chunk;
    const size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) break;
    Schedule([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace cobra
