#include "base/trace.h"

#include <atomic>
#include <cctype>

#include "base/strings.h"

namespace cobra::trace {

namespace {

std::atomic<uint64_t> g_spans_allocated{0};

void AppendIndented(const Span& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  if (!span.detail.empty()) {
    *out += " (";
    *out += span.detail;
    *out += ")";
  }
  *out += StrFormat(" %.6fs", span.seconds);
  *out += StrFormat(" rows_in=%llu rows_out=%llu",
                    static_cast<unsigned long long>(span.rows_in),
                    static_cast<unsigned long long>(span.rows_out));
  if (span.has_static_card) {
    if (span.static_hi == UINT64_MAX) {
      *out += StrFormat(" static=[%llu,*]",
                        static_cast<unsigned long long>(span.static_lo));
    } else {
      *out += StrFormat(" static=[%llu,%llu]",
                        static_cast<unsigned long long>(span.static_lo),
                        static_cast<unsigned long long>(span.static_hi));
    }
  }
  if (span.morsels != 0) {
    *out += StrFormat(" morsels=%llu",
                      static_cast<unsigned long long>(span.morsels));
  }
  if (span.index_probes != 0 || span.index_builds != 0 ||
      span.index_invalidations != 0) {
    *out += StrFormat(" index[probes=%llu builds=%llu invalidations=%llu]",
                      static_cast<unsigned long long>(span.index_probes),
                      static_cast<unsigned long long>(span.index_builds),
                      static_cast<unsigned long long>(span.index_invalidations));
  }
  if (span.dict_hits != 0) {
    *out += StrFormat(" dict_hits=%llu",
                      static_cast<unsigned long long>(span.dict_hits));
  }
  if (span.from_cache) *out += " from_cache";
  *out += "\n";
  for (const auto& child : span.children) {
    AppendIndented(*child, depth + 1, out);
  }
}

void AppendJsonString(std::string_view s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendJson(const Span& span, std::string* out) {
  *out += "{\"name\":";
  AppendJsonString(span.name, out);
  *out += ",\"detail\":";
  AppendJsonString(span.detail, out);
  *out += StrFormat(",\"seconds\":%.6f", span.seconds);
  *out += StrFormat(",\"rows_in\":%llu",
                    static_cast<unsigned long long>(span.rows_in));
  *out += StrFormat(",\"rows_out\":%llu",
                    static_cast<unsigned long long>(span.rows_out));
  if (span.has_static_card) {
    // static_hi of UINT64_MAX (unbounded above) exports as -1 so consumers
    // never mistake the sentinel for a real bound.
    *out += StrFormat(",\"static_lo\":%llu",
                      static_cast<unsigned long long>(span.static_lo));
    if (span.static_hi == UINT64_MAX) {
      *out += ",\"static_hi\":-1";
    } else {
      *out += StrFormat(",\"static_hi\":%llu",
                        static_cast<unsigned long long>(span.static_hi));
    }
  }
  *out += StrFormat(",\"morsels\":%llu",
                    static_cast<unsigned long long>(span.morsels));
  *out += StrFormat(",\"index_probes\":%llu",
                    static_cast<unsigned long long>(span.index_probes));
  *out += StrFormat(",\"index_builds\":%llu",
                    static_cast<unsigned long long>(span.index_builds));
  *out += StrFormat(",\"index_invalidations\":%llu",
                    static_cast<unsigned long long>(span.index_invalidations));
  *out += StrFormat(",\"dict_hits\":%llu",
                    static_cast<unsigned long long>(span.dict_hits));
  *out += StrFormat(",\"from_cache\":%s", span.from_cache ? "true" : "false");
  *out += ",\"children\":[";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) *out += ',';
    AppendJson(*span.children[i], out);
  }
  *out += "]}";
}

}  // namespace

Span* TraceSink::StartSpan(Span* parent, std::string_view name) {
  auto span = std::make_unique<Span>();
  span->name.assign(name.data(), name.size());
  Span* raw = span.get();
  g_spans_allocated.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  if (parent == nullptr) {
    roots_.push_back(std::move(span));
  } else {
    parent->children.push_back(std::move(span));
  }
  return raw;
}

void TraceSink::Clear() {
  MutexLock lock(mu_);
  roots_.clear();
}

size_t TraceSink::root_count() const {
  MutexLock lock(mu_);
  return roots_.size();
}

std::string TraceSink::ToText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& root : roots_) AppendIndented(*root, 0, &out);
  return out;
}

std::string TraceSink::ToJson() const {
  MutexLock lock(mu_);
  std::string out = "[";
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (i > 0) out += ',';
    AppendJson(*roots_[i], &out);
  }
  out += "]";
  return out;
}

uint64_t SpansAllocated() {
  return g_spans_allocated.load(std::memory_order_relaxed);
}

// -- JSON validation ----------------------------------------------------------

namespace {

/// Strict recursive-descent JSON checker. Depth-limited so adversarial
/// inputs cannot overflow the stack.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  Status Check() {
    COBRA_RETURN_IF_ERROR(Value(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrFormat("trailing JSON content at offset %zu", pos_));
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Value(int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("JSON nested too deeply");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    if (c == '-' || (c >= '0' && c <= '9')) return Number();
    return Status::InvalidArgument(
        StrFormat("unexpected JSON character '%c' at offset %zu", c, pos_));
  }

  Status Object(int depth) {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument("expected JSON object key");
      }
      COBRA_RETURN_IF_ERROR(String());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::InvalidArgument("expected ':' in JSON object");
      }
      ++pos_;
      COBRA_RETURN_IF_ERROR(Value(depth + 1));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated JSON object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("expected ',' or '}' in JSON object");
    }
  }

  Status Array(int depth) {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      COBRA_RETURN_IF_ERROR(Value(depth + 1));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated JSON array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("expected ',' or ']' in JSON array");
    }
  }

  Status String() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::InvalidArgument("raw control character in JSON string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Status::InvalidArgument("bad \\u escape in JSON string");
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Status::InvalidArgument("bad escape in JSON string");
        }
      }
      ++pos_;
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  Status Number() {
    const size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Status::InvalidArgument("bad JSON number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const size_t frac = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) {
        return Status::InvalidArgument("bad JSON number fraction");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) {
        return Status::InvalidArgument("bad JSON number exponent");
      }
    }
    return Status::OK();
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Status::InvalidArgument("bad JSON literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) {
  return JsonChecker(text).Check();
}

}  // namespace cobra::trace
