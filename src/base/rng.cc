#include "base/rng.h"

#include "base/logging.h"

namespace cobra {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  has_spare_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  COBRA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  COBRA_CHECK(total > 0.0) << "Categorical needs a positive total weight";
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::Exponential(double mean) {
  COBRA_CHECK(mean > 0.0);
  double u = 0.0;
  while (u <= 1e-300) u = Uniform();
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ull); }

}  // namespace cobra
