#include "base/mathutil.h"

#include <limits>

namespace cobra {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

double DynamicRange(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  return *mx - *mn;
}

double MaxOf(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

void NormalizeInPlace(std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  if (s <= std::numeric_limits<double>::min() * v.size()) {
    const double u = v.empty() ? 0.0 : 1.0 / static_cast<double>(v.size());
    for (double& x : v) x = u;
    return;
  }
  for (double& x : v) x /= s;
}

double LogSumExp(const std::vector<double>& v) {
  if (v.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace cobra
