#ifndef COBRA_BASE_LOGGING_H_
#define COBRA_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace cobra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted to stderr; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: accumulates the message and emits it (with level
/// tag, file and line) on destruction. FATAL additionally aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cobra

#define COBRA_LOG(level)                                                  \
  ::cobra::internal::LogMessage(::cobra::LogLevel::k##level, __FILE__, \
                                __LINE__)

#define COBRA_CHECK(cond)                                                   \
  if (!(cond))                                                              \
  ::cobra::internal::LogMessage(::cobra::LogLevel::kError, __FILE__,        \
                                __LINE__, /*fatal=*/true)                   \
      << "Check failed: " #cond " "

#define COBRA_DCHECK(cond) COBRA_CHECK(cond)

#endif  // COBRA_BASE_LOGGING_H_
