#ifndef COBRA_BASE_RNG_H_
#define COBRA_BASE_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace cobra {

/// Deterministic, seedable pseudo-random generator (splitmix64 +
/// xoshiro256**). All stochastic components of the library (race simulator,
/// EM initialization, noise injection) draw from an explicitly passed Rng so
/// experiments are reproducible bit-for-bit across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires hi >= lo.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal deviate (Box–Muller).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns weights.size() - 1 if rounding pushes past the end.
  size_t Categorical(const std::vector<double>& weights);

  /// Exponential deviate with the given mean (>0).
  double Exponential(double mean);

  /// Derives an independent child generator (for parallel workers).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace cobra

#endif  // COBRA_BASE_RNG_H_
