#ifndef COBRA_BASE_MUTEX_H_
#define COBRA_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace cobra {

/// Annotated mutex: a thin wrapper over std::mutex that carries the Clang
/// Thread Safety Analysis `capability` attribute, so GUARDED_BY/REQUIRES
/// declarations on the state it protects are checkable at compile time under
/// the `lint` preset. Zero overhead over std::mutex.
class COBRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() COBRA_ACQUIRE() { mu_.lock(); }
  void Unlock() COBRA_RELEASE() { mu_.unlock(); }
  bool TryLock() COBRA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over Mutex (scoped capability). Exposes no unlock: a scope holds
/// the capability for its full extent, which is exactly what the analysis can
/// reason about. CondVar::Wait may temporarily release it internally.
class COBRA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COBRA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() COBRA_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. Wait() atomically releases
/// the lock and reacquires it before returning, like std::condition_variable;
/// the capability is held at entry and at exit, so callers' guarded accesses
/// around the wait remain valid under the analysis. Callers must re-test
/// their predicate in a loop (spurious wakeups).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cobra

#endif  // COBRA_BASE_MUTEX_H_
