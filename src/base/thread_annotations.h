#ifndef COBRA_BASE_THREAD_ANNOTATIONS_H_
#define COBRA_BASE_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These annotate which mutex guards which state so that the `lint` preset
/// (clang with -Wthread-safety -Werror=thread-safety) turns lock-discipline
/// violations into compile errors instead of TSAN findings at runtime. Under
/// GCC (which has no thread-safety analysis) every macro expands to nothing,
/// so annotated headers stay portable.
///
/// Use the wrappers in base/mutex.h rather than std::mutex directly: the
/// standard library types carry no capability attributes, so the analysis
/// can only see locks taken through annotated types.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define COBRA_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef COBRA_THREAD_ANNOTATION_
#define COBRA_THREAD_ANNOTATION_(x)  // not clang: no-op
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define COBRA_CAPABILITY(x) COBRA_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define COBRA_SCOPED_CAPABILITY COBRA_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define COBRA_GUARDED_BY(x) COBRA_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the pointee of a pointer member is protected by `x`.
#define COBRA_PT_GUARDED_BY(x) COBRA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that callers must hold the capability when calling the function.
#define COBRA_REQUIRES(...) \
  COBRA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that the function acquires the capability and does not release.
#define COBRA_ACQUIRE(...) \
  COBRA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that the function releases a held capability.
#define COBRA_RELEASE(...) \
  COBRA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that the function acquires the capability iff it returns the
/// given value (first argument).
#define COBRA_TRY_ACQUIRE(...) \
  COBRA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the capability (deadlock guard).
#define COBRA_EXCLUDES(...) \
  COBRA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability.
#define COBRA_RETURN_CAPABILITY(x) COBRA_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for functions that are safe for reasons the analysis cannot
/// see (e.g. reads after all writers are provably quiesced). Every use should
/// carry a comment explaining the external invariant.
#define COBRA_NO_THREAD_SAFETY_ANALYSIS \
  COBRA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // COBRA_BASE_THREAD_ANNOTATIONS_H_
