#include "base/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "base/strings.h"

namespace cobra::io {

namespace {

/// splitmix64 step, matching base/rng.h's seeding discipline, used to derive
/// deterministic torn-write / short-read prefix lengths from a fault seed.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Status IoError(std::string_view what, const std::string& path, int err) {
  return Status(StatusCode::kIoError,
                StrFormat("%.*s %s: %s", static_cast<int>(what.size()),
                          what.data(), path.c_str(), std::strerror(err)));
}

}  // namespace

// -- Encoding -----------------------------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool ByteReader::Take(size_t n, const char** p) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = r;
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = r;
  return true;
}

bool ByteReader::ReadI64(int64_t* v) {
  uint64_t u = 0;
  if (!ReadU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool ByteReader::ReadF64(double* v) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool ByteReader::ReadBytes(size_t n, std::string* v) {
  const char* p = nullptr;
  if (!Take(n, &p)) return false;
  v->assign(p, n);
  return true;
}

bool ByteReader::ReadStr(std::string* v) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  const char* p = nullptr;
  if (!Take(len, &p)) return false;
  v->assign(p, len);
  return true;
}

uint32_t Crc32(std::string_view data) {
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int j = 0; j < 8; ++j) {
        c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xffffffffu;
  for (unsigned char ch : data) {
    crc = kTable[(crc ^ ch) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// -- POSIX filesystem ---------------------------------------------------------

namespace {

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status(StatusCode::kIoError, "append to closed file: " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return IoError("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status(StatusCode::kIoError, "sync of closed file: " + path_);
    if (::fsync(fd_) != 0) return IoError("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return IoError("close", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class RealFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return IoError("open", path, errno);
    return Result<std::unique_ptr<WritableFile>>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFile(const std::string& path) const override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return IoError("open", path, errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return IoError("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Result<std::string>(std::move(out));
  }

  Result<uint64_t> FileSize(const std::string& path) const override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return IoError("stat", path, errno);
    return Result<uint64_t>(static_cast<uint64_t>(st.st_size));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return IoError("rename", from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return IoError("unlink", path, errno);
    return Status::OK();
  }

  bool Exists(const std::string& path) const override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) const override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return IoError("opendir", dir, errno);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return Result<std::vector<std::string>>(std::move(names));
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return IoError("open", dir, errno);
    if (::fsync(fd) != 0) {
      int err = errno;
      ::close(fd);
      return IoError("fsync", dir, err);
    }
    if (::close(fd) != 0) return IoError("close", dir, errno);
    return Status::OK();
  }

  Status CreateDir(const std::string& dir) override {
    // mkdir -p: create each path component, tolerating ones that exist.
    std::string partial;
    size_t i = 0;
    while (i <= dir.size()) {
      if (i == dir.size() || dir[i] == '/') {
        if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
            errno != EEXIST) {
          return IoError("mkdir", partial, errno);
        }
      }
      if (i < dir.size()) partial.push_back(dir[i]);
      ++i;
    }
    return Status::OK();
  }
};

}  // namespace

Fs* RealFilesystem() {
  static RealFs* fs = new RealFs;
  return fs;
}

// -- MemFs --------------------------------------------------------------------

namespace {

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(MemFs* fs, std::shared_ptr<MemFs::File> file)
      : fs_(fs), file_(std::move(file)) {}

  Status Append(std::string_view data) override {
    if (closed_) return Status(StatusCode::kIoError, "append to closed file");
    return fs_->AppendTo(file_, data);
  }

  Status Sync() override {
    if (closed_) return Status(StatusCode::kIoError, "sync of closed file");
    return fs_->SyncFile(file_);
  }

  Status Close() override {
    closed_ = true;
    return Status::OK();
  }

 private:
  MemFs* fs_;
  std::shared_ptr<MemFs::File> file_;  // stays valid across renames
  bool closed_ = false;
};

Result<std::unique_ptr<WritableFile>> MemFs::NewWritableFile(
    const std::string& path, bool truncate) {
  std::shared_ptr<File> file;
  {
    MutexLock lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      it = files_.emplace(path, std::make_shared<File>()).first;
      dirs_.insert(ParentDir(path));
    }
    file = it->second;
    if (truncate) {
      file->data.clear();
      file->synced = 0;
    }
  }
  return Result<std::unique_ptr<WritableFile>>(
      std::make_unique<MemWritableFile>(this, std::move(file)));
}

Result<std::string> MemFs::ReadFile(const std::string& path) const {
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(StatusCode::kIoError, "no such file: " + path);
  }
  return Result<std::string>(std::string(it->second->data));
}

Result<uint64_t> MemFs::FileSize(const std::string& path) const {
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(StatusCode::kIoError, "no such file: " + path);
  }
  return Result<uint64_t>(static_cast<uint64_t>(it->second->data.size()));
}

Status MemFs::Rename(const std::string& from, const std::string& to) {
  MutexLock lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status(StatusCode::kIoError, "rename: no such file: " + from);
  }
  std::shared_ptr<File> file = it->second;
  files_.erase(it);
  files_[to] = std::move(file);
  dirs_.insert(ParentDir(to));
  return Status::OK();
}

Status MemFs::DeleteFile(const std::string& path) {
  MutexLock lock(mu_);
  if (files_.erase(path) == 0) {
    return Status(StatusCode::kIoError, "unlink: no such file: " + path);
  }
  return Status::OK();
}

bool MemFs::Exists(const std::string& path) const {
  MutexLock lock(mu_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Result<std::vector<std::string>> MemFs::ListDir(const std::string& dir) const {
  MutexLock lock(mu_);
  if (dirs_.count(dir) == 0) {
    return Status(StatusCode::kIoError, "no such directory: " + dir);
  }
  std::vector<std::string> names;
  const std::string prefix = dir + "/";
  for (const auto& [path, file] : files_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path.find('/', prefix.size()) == std::string::npos) {
      names.push_back(path.substr(prefix.size()));
    }
  }
  return Result<std::vector<std::string>>(std::move(names));  // map order: sorted
}

Status MemFs::CreateDir(const std::string& dir) {
  MutexLock lock(mu_);
  dirs_.insert(dir);
  return Status::OK();
}

Status MemFs::SyncDir(const std::string& dir) {
  MutexLock lock(mu_);
  if (dirs_.count(dir) == 0) {
    return Status(StatusCode::kIoError, "no such directory: " + dir);
  }
  // Publish the live namespace of `dir` into the durable view: creates and
  // renames become crash-visible, unlinked entries become crash-invisible.
  const std::string prefix = dir + "/";
  auto in_dir = [&prefix](const std::string& path) {
    return path.size() > prefix.size() &&
           path.compare(0, prefix.size(), prefix) == 0 &&
           path.find('/', prefix.size()) == std::string::npos;
  };
  for (auto it = durable_files_.begin(); it != durable_files_.end();) {
    if (in_dir(it->first) && files_.count(it->first) == 0) {
      it = durable_files_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, file] : files_) {
    if (in_dir(path)) durable_files_[path] = file;
  }
  return Status::OK();
}

void MemFs::DropUnsynced() {
  MutexLock lock(mu_);
  // The crash view: only SyncDir-published entries survive, each truncated
  // to its fsync'd prefix. A file whose entry was never published vanishes
  // even if its bytes were fsync'd (the inode is unreachable), and
  // unpublished renames/deletes roll back.
  files_ = durable_files_;
  for (auto& [path, file] : files_) {
    file->data.resize(file->synced);
  }
}

Status MemFs::AppendTo(const std::shared_ptr<File>& file, std::string_view data) {
  MutexLock lock(mu_);
  file->data.append(data.data(), data.size());
  return Status::OK();
}

Status MemFs::SyncFile(const std::shared_ptr<File>& file) {
  MutexLock lock(mu_);
  file->synced = file->data.size();
  return Status::OK();
}

// -- FaultFs ------------------------------------------------------------------

void FaultFs::Arm(const FaultPlan& plan) {
  MutexLock lock(fault_mu_);
  plan_ = plan;
  crashed_ = false;
  counts_ = OpCounts{};
}

void FaultFs::Crash() {
  {
    MutexLock lock(fault_mu_);
    plan_ = FaultPlan{};
    crashed_ = false;
    counts_ = OpCounts{};
  }
  DropUnsynced();
}

bool FaultFs::crashed() const {
  MutexLock lock(fault_mu_);
  return crashed_;
}

FaultFs::OpCounts FaultFs::counts() const {
  MutexLock lock(fault_mu_);
  return counts_;
}

FaultFs::TripOutcome FaultFs::Trip(FaultPlan::Mode a, FaultPlan::Mode b,
                                   int* counter) {
  MutexLock lock(fault_mu_);
  const bool is_read = a == FaultPlan::Mode::kShortRead;
  TripOutcome out;
  if (crashed_ && !is_read) {
    out.fail = true;
    return out;
  }
  ++*counter;
  if ((plan_.mode == a || plan_.mode == b) && *counter == plan_.k) {
    out.fail = true;
    out.armed_fault = true;
    out.mode = plan_.mode;
    out.seed = Mix64(plan_.seed + static_cast<uint64_t>(plan_.k));
    if (!is_read) crashed_ = true;
  }
  return out;
}

Result<std::unique_ptr<WritableFile>> FaultFs::NewWritableFile(
    const std::string& path, bool truncate) {
  {
    MutexLock lock(fault_mu_);
    if (crashed_) {
      return Status(StatusCode::kIoError, "injected crash: open " + path);
    }
  }
  return MemFs::NewWritableFile(path, truncate);
}

Result<std::string> FaultFs::ReadFile(const std::string& path) const {
  // Trip needs mutable counters; reads are counted even on a const fs.
  TripOutcome trip = const_cast<FaultFs*>(this)->Trip(
      FaultPlan::Mode::kShortRead, FaultPlan::Mode::kShortRead, &counts_.reads);
  auto full = MemFs::ReadFile(path);
  if (!trip.armed_fault || !full.ok()) return full;
  const std::string& data = full.value();
  // Strict prefix: the short read must lose at least one byte to matter.
  size_t keep = data.empty() ? 0 : trip.seed % data.size();
  return Result<std::string>(data.substr(0, keep));
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  TripOutcome trip = Trip(FaultPlan::Mode::kFailRename,
                          FaultPlan::Mode::kFailRename, &counts_.renames);
  if (trip.fail) {
    return Status(StatusCode::kIoError, "injected fault: rename " + from);
  }
  return MemFs::Rename(from, to);
}

Status FaultFs::DeleteFile(const std::string& path) {
  {
    MutexLock lock(fault_mu_);
    if (crashed_) {
      return Status(StatusCode::kIoError, "injected crash: unlink " + path);
    }
  }
  return MemFs::DeleteFile(path);
}

Status FaultFs::SyncDir(const std::string& dir) {
  TripOutcome trip = Trip(FaultPlan::Mode::kFailSync,
                          FaultPlan::Mode::kFailSync, &counts_.syncs);
  if (trip.fail) {
    return Status(StatusCode::kIoError, "injected fault: dir fsync " + dir);
  }
  return MemFs::SyncDir(dir);
}

Status FaultFs::AppendTo(const std::shared_ptr<File>& file,
                         std::string_view data) {
  TripOutcome trip = Trip(FaultPlan::Mode::kFailWrite,
                          FaultPlan::Mode::kTornWrite, &counts_.writes);
  if (trip.fail) {
    if (trip.armed_fault && trip.mode == FaultPlan::Mode::kTornWrite) {
      // Persist a seeded prefix of the write and mark it durable: real disks
      // can flush partial sectors that survive the crash.
      size_t keep = data.empty() ? 0 : trip.seed % data.size();
      (void)MemFs::AppendTo(file, data.substr(0, keep));
      (void)MemFs::SyncFile(file);
    }
    return Status(StatusCode::kIoError, "injected fault: write");
  }
  return MemFs::AppendTo(file, data);
}

Status FaultFs::SyncFile(const std::shared_ptr<File>& file) {
  TripOutcome trip = Trip(FaultPlan::Mode::kFailSync,
                          FaultPlan::Mode::kFailSync, &counts_.syncs);
  if (trip.fail) {
    return Status(StatusCode::kIoError, "injected fault: fsync");
  }
  return MemFs::SyncFile(file);
}

}  // namespace cobra::io
