#include "base/diag.h"

#include "base/strings.h"

namespace cobra {

std::string FormatDiagnostic(const Diagnostic& diag, std::string_view label) {
  return StrFormat(
      "%s:%d:%d: %s: %s", std::string(label).c_str(), diag.line, diag.col,
      diag.severity == Diagnostic::Severity::kError ? "error" : "warning",
      diag.message.c_str());
}

void DiagnosticList::Add(Diagnostic diag) { diags_.push_back(std::move(diag)); }

void DiagnosticList::Error(int line, int col, std::string message,
                           StatusCode code) {
  Diagnostic diag;
  diag.severity = Diagnostic::Severity::kError;
  diag.line = line;
  diag.col = col;
  diag.code = code;
  diag.message = std::move(message);
  diags_.push_back(std::move(diag));
}

void DiagnosticList::Warning(int line, int col, std::string message) {
  Diagnostic diag;
  diag.severity = Diagnostic::Severity::kWarning;
  diag.line = line;
  diag.col = col;
  diag.code = StatusCode::kOk;
  diag.message = std::move(message);
  diags_.push_back(std::move(diag));
}

bool DiagnosticList::ok() const { return error_count() == 0; }

size_t DiagnosticList::error_count() const {
  size_t n = 0;
  for (const Diagnostic& diag : diags_) {
    if (diag.severity == Diagnostic::Severity::kError) ++n;
  }
  return n;
}

Status DiagnosticList::ToStatus(std::string_view label) const {
  for (const Diagnostic& diag : diags_) {
    if (diag.severity == Diagnostic::Severity::kError) {
      return Status(diag.code, FormatDiagnostic(diag, label));
    }
  }
  return Status::OK();
}

std::string DiagnosticList::ToString(std::string_view label) const {
  std::string out;
  for (const Diagnostic& diag : diags_) {
    out += FormatDiagnostic(diag, label);
    out += "\n";
  }
  return out;
}

}  // namespace cobra
