#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cobra {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), file_(file), line_(line), fatal_(fatal) {}

LogMessage::~LogMessage() {
  if (fatal_ || static_cast<int>(level_) >=
                    g_min_level.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), Basename(file_),
                 line_, stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace cobra
