#ifndef COBRA_BASE_STATUS_H_
#define COBRA_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cobra {

/// Canonical error codes, modeled after the usual database-engine set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  kResourceExhausted,  // admission control: a bounded queue is full
  kUnavailable,        // the serving endpoint is shutting down / not serving
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail. The library does not throw across
/// public API boundaries; every fallible operation returns a Status or a
/// Result<T>. [[nodiscard]] at class level: silently dropping a Status is a
/// bug by definition here (a crash-safe store cannot shrug off a failed
/// fsync); the rare intentional drop is written `(void)expr` so the reader
/// sees the decision. tools/cobra_lint.cc re-checks the attribute stays.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts the process (programming error), mirroring
/// absl::StatusOr semantics. [[nodiscard]] like Status: an ignored Result is
/// an ignored error path.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return value;` / `return Status::NotFound(...)`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    CheckNotOk();
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const;
  void CheckNotOk() const;

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
[[noreturn]] void DieOkResultAsError();
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal::DieBadResultAccess(std::get<Status>(data_));
}

template <typename T>
void Result<T>::CheckNotOk() const {
  if (std::holds_alternative<Status>(data_) &&
      std::get<Status>(data_).ok()) {
    internal::DieOkResultAsError();
  }
}

}  // namespace cobra

/// Propagates a non-OK Status from an expression returning Status.
#define COBRA_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::cobra::Status _cobra_status = (expr);        \
    if (!_cobra_status.ok()) return _cobra_status; \
  } while (0)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define COBRA_ASSIGN_OR_RETURN(lhs, expr)                 \
  COBRA_ASSIGN_OR_RETURN_IMPL_(                           \
      COBRA_STATUS_CONCAT_(_cobra_result, __LINE__), lhs, expr)

#define COBRA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define COBRA_STATUS_CONCAT_(a, b) COBRA_STATUS_CONCAT_IMPL_(a, b)
#define COBRA_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // COBRA_BASE_STATUS_H_
