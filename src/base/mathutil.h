#ifndef COBRA_BASE_MATHUTIL_H_
#define COBRA_BASE_MATHUTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cobra {

/// Arithmetic mean; 0 for an empty range.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& v);

/// max(v) - min(v); 0 for an empty range. This is the "dynamic range"
/// statistic the paper computes for STE and pitch over an audio clip.
double DynamicRange(const std::vector<double>& v);

/// Maximum element; 0 for an empty range.
double MaxOf(const std::vector<double>& v);

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

/// Numerically-stable logistic 1 / (1 + e^-x).
inline double Sigmoid(double x) {
  if (x >= 0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Normalizes v in place to sum to 1; if the sum is ~0 makes it uniform.
void NormalizeInPlace(std::vector<double>& v);

/// log(sum(exp(v))) computed stably.
double LogSumExp(const std::vector<double>& v);

}  // namespace cobra

#endif  // COBRA_BASE_MATHUTIL_H_
