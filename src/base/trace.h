#ifndef COBRA_BASE_TRACE_H_
#define COBRA_BASE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"

namespace cobra::trace {

/// One node of an execution profile: an operator (kernel, Moa, or query
/// layer) with its timing and row/acceleration counters, plus the child
/// operators it invoked. A query run under `PROFILE` (or a MIL session with
/// `trace on`) yields a tree of these shaped like the executed plan.
///
/// Write discipline: the thread that opened a span owns its scalar fields
/// until the span ends; `children` is only ever mutated through
/// TraceSink::StartSpan, which serializes on the sink mutex. Concurrent
/// sibling spans (parallel operators sharing a parent) are therefore safe.
struct Span {
  std::string name;    // operator, e.g. "kernel.select_eq", "query.execute"
  std::string detail;  // free-form context: BAT/attr name, predicate, plan
  double seconds = 0.0;
  /// Input rows. Binary operators (join/semijoin/diff/concat) count both
  /// operands; the split is spelled out in `detail`.
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Morsels scheduled: N for a morsel-parallel run, 1 for a serial scan,
  /// 0 when an index probe answered without scanning.
  uint64_t morsels = 0;
  uint64_t index_probes = 0;
  uint64_t index_builds = 0;
  /// Rebuilds forced by a stale index (mutation bumped the BAT version).
  uint64_t index_invalidations = 0;
  /// Equality probes / group keys resolved through a string dictionary.
  uint64_t dict_hits = 0;
  /// The result was served from a cache; timings below this span were not
  /// re-measured (a cached profile is never replayed).
  bool from_cache = false;
  /// Static cardinality interval attached by the plan analyzer before
  /// execution: when `has_static_card` is set, the analyzer proved
  /// static_lo <= rows_out <= static_hi for this operator. static_hi of
  /// UINT64_MAX means "unbounded above" (rendered as `*`). The differential
  /// harness asserts containment of the observed rows_out on every traced
  /// plan.
  bool has_static_card = false;
  uint64_t static_lo = 0;
  uint64_t static_hi = 0;
  std::vector<std::unique_ptr<Span>> children;
};

/// Collects span trees. Install a sink on an ExecContext (`ctx.trace`) to
/// record; leave it null for the zero-cost default — instrumented operators
/// then allocate nothing and take no locks (see SpansAllocated()).
///
/// Tree mutation (StartSpan) is thread-safe; reading (`roots`, ToText,
/// ToJson) is safe once every guard recording into the sink has closed.
class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Appends a child under `parent` (or a new root when null) and returns
  /// it. The pointer stays stable for the sink's lifetime.
  Span* StartSpan(Span* parent, std::string_view name) COBRA_EXCLUDES(mu_);

  /// Drops every recorded span.
  void Clear() COBRA_EXCLUDES(mu_);

  size_t root_count() const COBRA_EXCLUDES(mu_);

  /// Unlocked read of the span tree. Only valid once every SpanGuard
  /// recording into this sink has closed (the sink's documented read
  /// contract); at that point no thread can mutate `roots_`, an invariant
  /// the static analysis cannot see.
  const std::vector<std::unique_ptr<Span>>& roots() const
      COBRA_NO_THREAD_SAFETY_ANALYSIS {
    return roots_;
  }

  /// Indented human-readable tree, one span per line.
  std::string ToText() const COBRA_EXCLUDES(mu_);

  /// JSON array of root span objects. Stable schema: every span object
  /// carries exactly the keys name, detail, seconds, rows_in, rows_out,
  /// morsels, index_probes, index_builds, index_invalidations, dict_hits,
  /// from_cache, children (in that order); spans carrying a static
  /// cardinality interval additionally emit static_lo, static_hi between
  /// rows_out and morsels (static_hi is -1 for "unbounded above").
  /// `children` is a nested array of the same shape. Output always
  /// satisfies ValidateJson().
  std::string ToJson() const COBRA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Span>> roots_ COBRA_GUARDED_BY(mu_);
};

/// Process-wide count of spans ever allocated — a diagnostic the
/// disabled-path tests pin: running instrumented operators with no sink
/// installed must not move it.
uint64_t SpansAllocated();

/// Strict JSON syntax validator (objects, arrays, strings with escapes,
/// numbers, true/false/null; rejects trailing garbage). Used to validate
/// exported profiles and the BENCH_*.json artifacts in tests.
Status ValidateJson(std::string_view text);

/// RAII span recorder. With a null sink every member is an inlineable no-op
/// — no allocation, no clock read, no lock. Callers building expensive
/// detail strings must guard on enabled():
///
///   SpanGuard span(ctx.trace, ctx.trace_parent, "kernel.join");
///   if (span.enabled()) span.Detail(StrFormat(...));
class SpanGuard {
 public:
  SpanGuard(TraceSink* sink, Span* parent, std::string_view name) {
    if (sink == nullptr) return;
    span_ = sink->StartSpan(parent, name);
    start_ = std::chrono::steady_clock::now();
  }
  ~SpanGuard() {
    if (span_ == nullptr) return;
    span_->seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  bool enabled() const { return span_ != nullptr; }
  /// The open span (null when disabled); children attach under it.
  Span* span() const { return span_; }

  void Detail(std::string detail) {
    if (span_ != nullptr) span_->detail = std::move(detail);
  }
  void RowsIn(uint64_t n) {
    if (span_ != nullptr) span_->rows_in += n;
  }
  void RowsOut(uint64_t n) {
    if (span_ != nullptr) span_->rows_out += n;
  }
  void Morsels(uint64_t n) {
    if (span_ != nullptr) span_->morsels += n;
  }
  void IndexProbes(uint64_t n) {
    if (span_ != nullptr) span_->index_probes += n;
  }
  void IndexBuilds(uint64_t n) {
    if (span_ != nullptr) span_->index_builds += n;
  }
  void IndexInvalidations(uint64_t n) {
    if (span_ != nullptr) span_->index_invalidations += n;
  }
  void DictHits(uint64_t n) {
    if (span_ != nullptr) span_->dict_hits += n;
  }
  void FromCache() {
    if (span_ != nullptr) span_->from_cache = true;
  }
  /// Attaches the analyzer's static cardinality interval [lo, hi] (hi of
  /// UINT64_MAX = unbounded above). Text form renders `static=[lo,hi]`.
  void StaticCard(uint64_t lo, uint64_t hi) {
    if (span_ == nullptr) return;
    span_->has_static_card = true;
    span_->static_lo = lo;
    span_->static_hi = hi;
  }

 private:
  Span* span_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cobra::trace

#endif  // COBRA_BASE_TRACE_H_
