#ifndef COBRA_BASE_STRINGS_H_
#define COBRA_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cobra {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// ASCII upper-casing (the text recognizer and query language are
/// case-insensitive over A–Z).
std::string ToUpperAscii(std::string_view s);
std::string ToLowerAscii(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins pieces with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cobra

#endif  // COBRA_BASE_STRINGS_H_
