#include "base/status.h"

#include <cstdio>
#include <cstdlib>

namespace cobra {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessing value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieOkResultAsError() {
  std::fprintf(stderr, "FATAL: constructing Result error from OK status\n");
  std::abort();
}

}  // namespace internal
}  // namespace cobra
