#ifndef COBRA_BASE_DIAG_H_
#define COBRA_BASE_DIAG_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace cobra {

/// One finding from a static analysis pass (the MIL script analyzer, the
/// query-text analyzer, the plan verifier). Positions are 1-based and point
/// at the first character of the offending token.
struct Diagnostic {
  enum class Severity { kWarning, kError };

  Severity severity = Severity::kError;
  int line = 1;
  int col = 1;
  /// The Status code execution would have failed with; preserved so a
  /// pre-execution rejection is indistinguishable (code-wise) from the
  /// runtime error it front-runs.
  StatusCode code = StatusCode::kInvalidArgument;
  std::string message;
};

/// "label:LINE:COL: error|warning: message" — the classic compiler shape.
std::string FormatDiagnostic(const Diagnostic& diag, std::string_view label);

/// Ordered findings of one analysis run. Warnings never fail a script;
/// errors reject it before any operator executes.
class DiagnosticList {
 public:
  void Add(Diagnostic diag);
  void Error(int line, int col, std::string message,
             StatusCode code = StatusCode::kInvalidArgument);
  void Warning(int line, int col, std::string message);

  /// True when no error-severity entry exists (warnings allowed).
  bool ok() const;
  bool empty() const { return diags_.empty(); }
  size_t error_count() const;
  size_t warning_count() const { return diags_.size() - error_count(); }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// OK when ok(); otherwise the first error, formatted with `label` and
  /// carrying that error's StatusCode.
  Status ToStatus(std::string_view label) const;

  /// Every diagnostic, one per line (each newline-terminated).
  std::string ToString(std::string_view label) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace cobra

#endif  // COBRA_BASE_DIAG_H_
