// The paper's §5.6 query session: the example queries from the
// content-based-retrieval section run against an ingested race, combining
// DBN-extracted events, recognized superimposed text, and rule-derived
// compound events.
//
// Build & run:   ./build/examples/query_demo

#include <cstdio>

#include "f1/pipeline.h"

namespace {

void Run(cobra::f1::F1System& system, const char* description,
         const char* query) {
  std::printf("\n\"%s\"\n> %s\n", description, query);
  auto result = system.Query(query);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->extracted_dynamically) {
    std::printf("  [dynamic extraction:");
    for (const auto& m : result->methods_invoked) std::printf(" %s", m.c_str());
    std::printf("]\n");
  }
  if (result->segments.empty()) {
    std::printf("  (no matching video sequences)\n");
    return;
  }
  for (const auto& s : result->segments) {
    std::printf("  [%6.1f .. %6.1f] %s", s.begin_sec, s.end_sec,
                s.type.c_str());
    for (const auto& [k, v] : s.attrs) {
      std::printf("  %s=%s", k.c_str(), v.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace cobra::f1;

  F1System system;
  F1System::IngestOptions options;
  options.materialize = true;  // annotate everything up front
  std::printf("Ingesting and annotating the German GP...\n");
  auto video = system.IngestRace(RaceProfile::GermanGp(600.0), options);
  if (!video.ok()) {
    std::printf("ingest failed: %s\n", video.status().ToString().c_str());
    return 1;
  }

  // The paper's example queries (adapted to this repo's retrieval syntax).
  Run(system, "Retrieve all highlights of the race",
      "RETRIEVE highlight FROM 'german-gp'");
  Run(system, "Retrieve all fly outs",
      "RETRIEVE flyout FROM 'german-gp'");
  Run(system, "Retrieve the race winner",
      "RETRIEVE winner FROM 'german-gp'");
  Run(system, "Retrieve the video sequences showing a pit stop",
      "RETRIEVE pitstop FROM 'german-gp'");
  Run(system, "Retrieve the classification captions naming the leader",
      "RETRIEVE classification FROM 'german-gp'");
  Run(system, "Retrieve all highlights with excited commentary",
      "RETRIEVE highlight FROM 'german-gp' OVERLAPPING excited_speech");
  Run(system, "Retrieve highlights shown while a caption names a driver",
      "RETRIEVE highlight FROM 'german-gp' OVERLAPPING caption");
  Run(system, "Retrieve fly outs attributed to a driver (rule-derived)",
      "RETRIEVE flyout_of FROM 'german-gp'");
  Run(system, "Retrieve incidents (highlight followed by its replay)",
      "RETRIEVE incident FROM 'german-gp'");
  Run(system, "Retrieve excited speech using the cheaper method",
      "RETRIEVE excited_speech FROM 'german-gp' PREFER COST");
  return 0;
}
