// Quickstart: bring up the Cobra VDBMS, ingest one synthetic Formula 1
// broadcast, and run a retrieval query. The query preprocessor notices that
// no "highlight" metadata exists yet and invokes the audio-visual DBN
// extension dynamically — the paper's query-time semantic extraction.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "f1/pipeline.h"

int main() {
  using namespace cobra::f1;

  // 1. The system: kernel catalog + Cobra video model + extensions + query
  //    engine, assembled by F1System.
  F1System system;

  // 2. Ingest a race. This synthesizes the broadcast (audio, frames,
  //    captions), runs the full feature-extraction front end, and trains
  //    the DBN models on the race's first minutes.
  F1System::IngestOptions options;
  std::printf("Ingesting a 5-minute German GP broadcast...\n");
  auto video = system.IngestRace(RaceProfile::GermanGp(300.0), options);
  if (!video.ok()) {
    std::printf("ingest failed: %s\n", video.status().ToString().c_str());
    return 1;
  }

  // 3. Query. No highlight metadata exists yet, so the preprocessor picks
  //    an extraction method (by quality) and materializes it first.
  const char* query = "RETRIEVE highlight FROM 'german-gp'";
  std::printf("\n> %s\n", query);
  auto result = system.Query(query);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (result->extracted_dynamically) {
    std::printf("(metadata was missing; the preprocessor invoked:");
    for (const auto& method : result->methods_invoked) {
      std::printf(" %s", method.c_str());
    }
    std::printf(")\n");
  }
  for (const auto& segment : result->segments) {
    std::printf("  highlight  [%6.1f s .. %6.1f s]\n", segment.begin_sec,
                segment.end_sec);
  }

  // 4. Querying again hits the stored metadata — no re-extraction.
  auto again = system.Query(query);
  if (again.ok()) {
    std::printf("\nsecond run: %zu segments, extracted dynamically: %s\n",
                again->segments.size(),
                again->extracted_dynamically ? "yes" : "no (cached)");
  }
  return 0;
}
