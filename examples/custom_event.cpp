// Custom event definition — the capability the paper highlights in its
// conclusions: "a user can define new compound events by specifying
// different temporal relationships among already defined events ... and
// then he already can query the database."
//
// This example defines two new events on top of an annotated race:
//   * "battle":   a passing fight with excited commentary (intersection of
//                 a passing event and an excited-speech segment), and
//   * "drama":    a fly-out followed within 20 s by a pit stop caption or a
//                 replay.
// Both are derived with the rule extension's machinery and stored back into
// the event layer, after which they are ordinary queryable metadata.
//
// Build & run:   ./build/examples/custom_event

#include <cstdio>

#include "f1/pipeline.h"
#include "rules/engine.h"

int main() {
  using namespace cobra::f1;
  using cobra::rules::AllenRelation;
  using cobra::rules::IntervalCombine;
  using cobra::rules::Rule;
  using cobra::rules::RuleEngine;

  F1System system;
  F1System::IngestOptions options;
  options.materialize = true;
  std::printf("Ingesting and annotating the Belgian GP...\n");
  auto video = system.IngestRace(RaceProfile::BelgianGp(600.0), options);
  if (!video.ok()) {
    std::printf("ingest failed: %s\n", video.status().ToString().c_str());
    return 1;
  }

  // --- User-defined compound events ---------------------------------------
  RuleEngine engine;

  Rule battle;
  battle.name = "battle";
  battle.first.type = "passing";
  battle.second.type = "excited_speech";
  battle.binary = true;
  battle.allowed_relations = {
      AllenRelation::kOverlaps, AllenRelation::kOverlappedBy,
      AllenRelation::kDuring, AllenRelation::kContains,
      AllenRelation::kStarts, AllenRelation::kStartedBy,
      AllenRelation::kFinishes, AllenRelation::kFinishedBy,
      AllenRelation::kEquals};
  battle.derived_type = "battle";
  battle.combine = IntervalCombine::kIntersection;
  engine.AddRule(battle);

  Rule drama;
  drama.name = "drama";
  drama.first.type = "flyout";
  drama.second.type = "replay";
  drama.binary = true;
  drama.allowed_relations = {AllenRelation::kBefore, AllenRelation::kMeets};
  drama.max_gap_sec = 20.0;
  drama.derived_type = "drama";
  drama.combine = IntervalCombine::kUnion;
  engine.AddRule(drama);

  auto events = system.videos().Events(*video);
  if (!events.ok()) return 1;
  std::vector<cobra::rules::EventFact> facts;
  for (const auto& e : *events) {
    facts.push_back(cobra::model::VideoCatalog::ToFact(e));
  }
  const size_t base = facts.size();
  const auto derived = engine.Infer(facts);
  std::printf("derived %zu new compound events from %zu base events\n",
              derived.size() - base, base);
  for (size_t i = base; i < derived.size(); ++i) {
    auto record = cobra::model::VideoCatalog::FromFact(derived[i]);
    if (!system.videos().StoreEvent(*video, record).ok()) return 1;
  }

  // --- The new events are ordinary metadata now -----------------------------
  for (const char* query : {"RETRIEVE battle FROM 'belgian-gp'",
                            "RETRIEVE drama FROM 'belgian-gp'"}) {
    std::printf("\n> %s\n", query);
    auto result = system.Query(query);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (result->segments.empty()) std::printf("  (none this race)\n");
    for (const auto& s : result->segments) {
      std::printf("  [%6.1f .. %6.1f] %s\n", s.begin_sec, s.end_sec,
                  s.type.c_str());
    }
  }
  return 0;
}
