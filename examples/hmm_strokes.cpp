// The HMM extension in the style of the paper's Fig. 4 MIL program: six
// named stroke models evaluated in parallel over a quantized observation
// sequence, with the best-scoring model returned — here trained and
// classified on synthetic feature streams.
//
// Build & run:   ./build/examples/hmm_strokes

#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "hmm/hmm.h"
#include "hmm/parallel_eval.h"

namespace {

using cobra::Rng;
using cobra::hmm::Hmm;

/// Synthesizes a feature quadruple for a "stroke" with a characteristic
/// symbol bias, mimicking the quantized f1..f4 feature BATs of Fig. 4.
std::vector<int> MakeSequence(int cls, Rng& rng, int length = 60) {
  std::vector<int> obs(length);
  for (int t = 0; t < length; ++t) {
    // Each class favours a different region of the 16-symbol alphabet.
    const int base = (cls * 3) % 16;
    obs[t] = rng.Bernoulli(0.7)
                 ? (base + static_cast<int>(rng.UniformInt(3u))) % 16
                 : static_cast<int>(rng.UniformInt(16u));
  }
  return obs;
}

}  // namespace

int main() {
  const char* kStrokes[] = {"Service",        "Forehand",
                            "Smash",          "Backhand",
                            "VolleyBackhand", "VolleyForehand"};
  Rng rng(2002);

  // Train one HMM per stroke on 12 sequences each (Baum-Welch).
  cobra::hmm::ParallelEvaluator evaluator;
  for (int cls = 0; cls < 6; ++cls) {
    std::vector<std::vector<int>> train;
    for (int s = 0; s < 12; ++s) train.push_back(MakeSequence(cls, rng));
    Hmm hmm(4, 16);
    hmm.Randomize(rng);
    auto loglik = hmm.BaumWelch(train, {});
    if (!loglik.ok()) {
      std::printf("training %s failed\n", kStrokes[cls]);
      return 1;
    }
    evaluator.AddModel(kStrokes[cls], std::move(hmm));
    std::printf("trained %-16s (final loglik %.1f)\n", kStrokes[cls],
                *loglik);
  }

  // Classify held-out sequences through the parallel evaluator (the
  // kernel's parallel execution operator fans out to the six models).
  int correct = 0;
  const int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    const int cls = trial % 6;
    auto obs = MakeSequence(cls, rng);
    auto label = evaluator.Classify(obs, /*parallel=*/true);
    if (!label.ok()) return 1;
    if (*label == kStrokes[cls]) ++correct;
  }
  std::printf("\nparallel classification accuracy: %d / %d\n", correct,
              kTrials);

  // Show the per-model scores for one sequence, like the parEval table the
  // MIL procedure builds.
  auto scores = evaluator.EvaluateAll(MakeSequence(2, rng));
  if (scores.ok()) {
    std::printf("\nscores for one Smash sequence:\n");
    for (const auto& [name, loglik] : *scores) {
      std::printf("  %-16s %.1f\n", name.c_str(), loglik);
    }
  }
  return 0;
}
