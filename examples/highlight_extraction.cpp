// End-to-end highlight extraction (the paper's §5.5 pipeline), outside the
// query engine: synthesize a broadcast, extract the f1–f17 evidence, train
// the audio-visual DBN on supervised segments, filter the whole race, and
// report the extracted highlights with their sub-event classification and
// precision/recall against ground truth.
//
// Build & run:   ./build/examples/highlight_extraction [race_seconds]

#include <cstdio>
#include <cstdlib>

#include "f1/pipeline.h"

int main(int argc, char** argv) {
  using namespace cobra::f1;

  const double seconds = argc > 1 ? std::atof(argv[1]) : 420.0;
  const RaceProfile profile = RaceProfile::GermanGp(seconds);
  std::printf("Synthesizing %s (%.0f s) and extracting evidence...\n",
              profile.name.c_str(), profile.duration_sec);
  const RaceTimeline timeline = GenerateTimeline(profile);
  const RaceEvidence evidence = ExtractEvidence(timeline);

  std::printf("Training the audio-visual DBN (6 supervised segments)...\n");
  TrainingOptions training;
  auto dbn = TrainAudioVisualDbn(/*with_passing=*/true, evidence, training);
  if (!dbn.ok()) {
    std::printf("training failed: %s\n", dbn.status().ToString().c_str());
    return 1;
  }

  std::printf("Filtering the whole race...\n");
  auto series = InferAudioVisual(*dbn, evidence);
  if (!series.ok()) {
    std::printf("inference failed: %s\n", series.status().ToString().c_str());
    return 1;
  }

  const HighlightResult result = ExtractHighlights(*series);
  std::printf("\nExtracted highlights (threshold 0.5, min duration 6 s):\n");
  for (const auto& segment : result.highlights) {
    std::printf("  [%6.1f .. %6.1f]", segment.begin, segment.end);
    for (const auto& typed : result.sub_events) {
      if (typed.span.begin >= segment.begin - 1e-9 &&
          typed.span.end <= segment.end + 1e-9) {
        std::printf("  %s", typed.type.c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\nGround truth (start / fly-outs / passings / replays):\n");
  for (const auto& truth : timeline.Highlights()) {
    std::printf("  [%6.1f .. %6.1f] %s\n", truth.begin, truth.end,
                truth.type.c_str());
  }

  const auto pr =
      ScoreSegments(result.highlights, HighlightSegments(timeline));
  std::printf("\nHighlights: precision %.0f%%  recall %.0f%%  "
              "(%d detections / %d interesting segments)\n",
              100.0 * pr.precision, 100.0 * pr.recall, pr.num_detections,
              pr.num_truth);
  return 0;
}
