# Validates a benchmark JSON artifact: the file must exist, parse as JSON,
# and contain a non-empty array — or an object whose "results" member is a
# non-empty array (the kernel benches also embed a "trace" span tree) —
# keeping the BENCH_*.json perf trajectory machine-readable. Usage:
#   cmake -DJSON_FILE=<path> -P check_bench_json.cmake
if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "pass -DJSON_FILE=<path>")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "benchmark output missing: ${JSON_FILE}")
endif()
file(READ "${JSON_FILE}" _content)
string(JSON _len ERROR_VARIABLE _err LENGTH "${_content}")
if(_err)
  message(FATAL_ERROR "malformed JSON in ${JSON_FILE}: ${_err}")
endif()
string(JSON _results ERROR_VARIABLE _no_results GET "${_content}" "results")
if(NOT _no_results)
  string(JSON _len ERROR_VARIABLE _err LENGTH "${_content}" "results")
  if(_err)
    message(FATAL_ERROR "bad \"results\" member in ${JSON_FILE}: ${_err}")
  endif()
endif()
if(_len LESS 1)
  message(FATAL_ERROR "empty benchmark array in ${JSON_FILE}")
endif()
message(STATUS "${JSON_FILE}: valid JSON with ${_len} result entries")
