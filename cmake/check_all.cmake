# Runs the full test matrix: each preset (default, tsan, asan, ubsan — plus
# lint when clang++ is installed) is configured, built, and ctest-run in
# sequence; the first failure aborts.
# Usage:
#   cmake -DSOURCE_DIR=<repo root> [-DPRESETS=default\;tsan\;asan\;ubsan] \
#         -P cmake/check_all.cmake
# or, from a configured build tree, the `check-all` target.
if(NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()
if(NOT DEFINED PRESETS)
  set(PRESETS default tsan asan ubsan)
  # The lint preset compiles with clang++ (-Wthread-safety promoted to
  # errors); it only joins the default matrix when that compiler exists.
  find_program(_clangxx clang++)
  if(_clangxx)
    list(APPEND PRESETS lint)
  else()
    message(STATUS "check-all: clang++ not found, skipping the lint preset")
  endif()
endif()

# Script mode does not define CMAKE_CTEST_COMMAND; ctest lives next to cmake.
get_filename_component(_cmake_bindir "${CMAKE_COMMAND}" DIRECTORY)
set(_ctest "${_cmake_bindir}/ctest")

foreach(_preset IN LISTS PRESETS)
  message(STATUS "==== preset ${_preset}: configure ====")
  execute_process(COMMAND "${CMAKE_COMMAND}" --preset ${_preset}
                  WORKING_DIRECTORY "${SOURCE_DIR}" RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "configure failed for preset ${_preset}")
  endif()

  message(STATUS "==== preset ${_preset}: build ====")
  execute_process(COMMAND "${CMAKE_COMMAND}" --build --preset ${_preset}
                          --parallel
                  WORKING_DIRECTORY "${SOURCE_DIR}" RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "build failed for preset ${_preset}")
  endif()

  # The repo-invariant linter needs only a compiler, so it runs once per
  # matrix — on the default preset, right after its build.
  if(_preset STREQUAL "default")
    message(STATUS "==== preset ${_preset}: lint-invariants ====")
    execute_process(COMMAND "${CMAKE_COMMAND}" --build --preset ${_preset}
                            --target lint-invariants
                    WORKING_DIRECTORY "${SOURCE_DIR}" RESULT_VARIABLE _rc)
    if(NOT _rc EQUAL 0)
      message(FATAL_ERROR "lint-invariants failed for preset ${_preset}")
    endif()
  endif()

  # The lint preset additionally runs clang-tidy (the `lint` build target);
  # its concurrency-* checks are promoted to errors, so any diagnostic fails
  # the matrix here just like a thread-safety error fails the build above.
  if(_preset STREQUAL "lint")
    message(STATUS "==== preset ${_preset}: clang-tidy ====")
    execute_process(COMMAND "${CMAKE_COMMAND}" --build --preset ${_preset}
                            --target lint
                    WORKING_DIRECTORY "${SOURCE_DIR}" RESULT_VARIABLE _rc)
    if(NOT _rc EQUAL 0)
      message(FATAL_ERROR "clang-tidy failed for preset ${_preset}")
    endif()
  endif()

  message(STATUS "==== preset ${_preset}: test ====")
  execute_process(COMMAND "${_ctest}" --preset ${_preset}
                  WORKING_DIRECTORY "${SOURCE_DIR}" RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "tests failed for preset ${_preset}")
  endif()
endforeach()

message(STATUS "check-all: every preset is green")
