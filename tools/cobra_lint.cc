// cobra_lint: repo-invariant linter. Unlike the clang-tidy `lint` target
// (general C++ hygiene), this binary enforces invariants specific to this
// codebase that no generic checker knows about:
//
//   1. span-coverage   — every kernel operator records a trace span: each
//                        name in the operator span inventory must appear as
//                        a string literal in src/kernel/, and so must the
//                        MIL wrapper spans the plan analyzer attaches
//                        static cardinality intervals to.
//   2. nodiscard       — the error-carrying types stay [[nodiscard]]:
//                        dropping a Status/Result (or a Value::Numeric
//                        conversion) on the floor must not compile. The
//                        compiler enforces consumption; this check enforces
//                        that nobody quietly removes the attribute.
//   3. fsync-after-rename — in src/kernel/persist.cc every filesystem
//                        Rename() (the atomic-publish step of checkpoint /
//                        WAL rotation) is followed by a SyncDir() in the
//                        same function, so a crash cannot lose the
//                        directory entry of a file the store already calls
//                        durable.
//
// Usage:
//   cobra_lint <repo-root>     lint the tree; exit 1 on any violation
//   cobra_lint --self-test     run the checkers over embedded good/bad
//                              snippets; exit 1 if any checker is blind
//
// No dependencies beyond the standard library, so the `lint-invariants`
// build target works on machines without clang-tidy.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Violation {
  std::string file;
  int line = 0;  // 0 = whole-file finding
  std::string message;
};

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = true;
  return buf.str();
}

// -- check 1: span coverage --------------------------------------------------

/// The operator span inventory: one entry per kernel operator (and per MIL
/// wrapper the analyzer attaches PlanFacts to). Growing the kernel without
/// growing this list is fine; REMOVING a span regresses observability and
/// fails here.
const char* const kRequiredSpans[] = {
    "kernel.select_eq", "kernel.select_range", "kernel.select_str",
    "kernel.sum",       "kernel.max",          "kernel.min",
    "kernel.arg_max",   "kernel.join",         "kernel.semijoin",
    "kernel.diff",      "kernel.group",        "kernel.concat",
    "mil.select",       "mil.join",            "mil.semijoin",
    "mil.diff",         "mil.concat",          "mil.group",
};

std::vector<Violation> CheckSpanCoverage(const std::string& kernel_sources,
                                         const std::string& label) {
  std::vector<Violation> out;
  for (const char* span : kRequiredSpans) {
    const std::string quoted = std::string("\"") + span + "\"";
    if (kernel_sources.find(quoted) == std::string::npos) {
      out.push_back({label, 0,
                     std::string("span-coverage: kernel operator span ") +
                         quoted + " is not recorded anywhere"});
    }
  }
  return out;
}

// -- check 2: [[nodiscard]] --------------------------------------------------

struct NodiscardRule {
  const char* file;       // path under the repo root
  const char* declaration;  // text that must appear WITH the attribute
  const char* what;
};

const NodiscardRule kNodiscardRules[] = {
    {"src/base/status.h", "class [[nodiscard]] Status",
     "Status must be declared class [[nodiscard]]"},
    {"src/base/status.h", "class [[nodiscard]] Result",
     "Result<T> must be declared class [[nodiscard]]"},
    {"src/kernel/bat.h", "[[nodiscard]] Result<double> Numeric()",
     "Value::Numeric() must be [[nodiscard]]"},
};

std::vector<Violation> CheckNodiscard(
    const std::string& repo,
    const std::string& (*load)(const std::string&, std::string*)) {
  std::vector<Violation> out;
  std::string storage;
  for (const NodiscardRule& rule : kNodiscardRules) {
    const std::string& content = load(repo + "/" + rule.file, &storage);
    if (content.find(rule.declaration) == std::string::npos) {
      out.push_back({rule.file, 0,
                     std::string("nodiscard: ") + rule.what});
    }
  }
  return out;
}

// -- check 3: fsync after rename ---------------------------------------------

/// Every `fs_->Rename(` (or `fs->Rename(` in test doubles) must be followed
/// by a `SyncDir(` before the enclosing function ends (first line whose
/// first column is '}'). A rename published without syncing the directory
/// is exactly the crash-consistency bug the persist tests' crash matrix
/// exists to catch — this check stops it at review time.
std::vector<Violation> CheckFsyncAfterRename(const std::string& file,
                                             const std::string& content) {
  std::vector<Violation> out;
  std::vector<std::string> lines;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const size_t comment = line.find("//");
    const size_t pos = line.find("->Rename(");
    if (pos == std::string::npos) continue;
    if (comment != std::string::npos && comment < pos) continue;
    // Only filesystem renames: `fs_->Rename(` / `fs->Rename(`. Catalog
    // renames (`catalog->Rename`) are in-memory and irrelevant here.
    const bool fs_rename =
        (pos >= 3 && line.compare(pos - 3, 3, "fs_") == 0) ||
        (pos >= 2 && line.compare(pos - 2, 2, "fs") == 0 &&
         (pos == 2 || !(std::isalnum(static_cast<unsigned char>(
                            line[pos - 3])) ||
                        line[pos - 3] == '_')));
    if (!fs_rename) continue;
    bool synced = false;
    for (size_t j = i + 1; j < lines.size(); ++j) {
      if (lines[j].find("SyncDir(") != std::string::npos) {
        synced = true;
        break;
      }
      if (!lines[j].empty() && lines[j][0] == '}') break;  // function end
    }
    if (!synced) {
      out.push_back({file, static_cast<int>(i + 1),
                     "fsync-after-rename: filesystem Rename() is not "
                     "followed by SyncDir() in the same function — the "
                     "directory entry is not durable"});
    }
  }
  return out;
}

// -- driver ------------------------------------------------------------------

const std::string& LoadFromDisk(const std::string& path, std::string* storage) {
  bool ok = false;
  *storage = ReadFile(path, &ok);
  if (!ok) storage->clear();  // missing file => rule text absent => violation
  return *storage;
}

int LintRepo(const std::string& repo) {
  std::vector<Violation> violations;

  // span coverage: concatenate the kernel sources the operators live in.
  std::string kernel_sources;
  for (const char* rel : {"src/kernel/bat.cc", "src/kernel/shard.cc",
                          "src/kernel/mil.cc"}) {
    bool ok = false;
    kernel_sources += ReadFile(repo + "/" + rel, &ok);
    if (!ok) {
      violations.push_back({rel, 0, "span-coverage: file unreadable"});
    }
    kernel_sources += '\n';
  }
  for (Violation& v : CheckSpanCoverage(kernel_sources, "src/kernel")) {
    violations.push_back(std::move(v));
  }

  for (Violation& v : CheckNodiscard(repo, &LoadFromDisk)) {
    violations.push_back(std::move(v));
  }

  {
    bool ok = false;
    const std::string persist = ReadFile(repo + "/src/kernel/persist.cc", &ok);
    if (!ok) {
      violations.push_back(
          {"src/kernel/persist.cc", 0, "fsync-after-rename: file unreadable"});
    }
    for (Violation& v :
         CheckFsyncAfterRename("src/kernel/persist.cc", persist)) {
      violations.push_back(std::move(v));
    }
  }

  for (const Violation& v : violations) {
    if (v.line > 0) {
      std::fprintf(stderr, "%s:%d: %s\n", v.file.c_str(), v.line,
                   v.message.c_str());
    } else {
      std::fprintf(stderr, "%s: %s\n", v.file.c_str(), v.message.c_str());
    }
  }
  if (violations.empty()) {
    std::printf("cobra_lint: all repo invariants hold\n");
    return 0;
  }
  std::fprintf(stderr, "cobra_lint: %zu violation(s)\n", violations.size());
  return 1;
}

/// The linter's own test: each checker must flag the embedded bad snippet
/// and pass the embedded good one. A checker that stops seeing its defect
/// class fails here, so `lint-invariants` cannot silently go blind.
int SelfTest() {
  int failures = 0;
  auto expect = [&failures](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "self-test FAILED: %s\n", what);
      ++failures;
    }
  };

  // fsync-after-rename: naked rename flagged, synced rename clean.
  const std::string bad_persist =
      "Status Publish() {\n"
      "  COBRA_RETURN_IF_ERROR(fs_->Rename(tmp, path));\n"
      "  return Status::OK();\n"
      "}\n";
  const std::string good_persist =
      "Status Publish() {\n"
      "  COBRA_RETURN_IF_ERROR(fs_->Rename(tmp, path));\n"
      "  COBRA_RETURN_IF_ERROR(fs_->SyncDir(dir_));\n"
      "  return Status::OK();\n"
      "}\n";
  const std::string catalog_rename =
      "Status Replay() {\n"
      "  return catalog->Rename(from, to);\n"
      "}\n";
  expect(CheckFsyncAfterRename("bad", bad_persist).size() == 1,
         "naked fs_->Rename must be flagged");
  expect(CheckFsyncAfterRename("good", good_persist).empty(),
         "Rename followed by SyncDir must pass");
  expect(CheckFsyncAfterRename("catalog", catalog_rename).empty(),
         "catalog->Rename (not a filesystem op) must be ignored");

  // span coverage: a source blob missing one operator span is flagged once.
  std::string all_spans;
  for (const char* span : kRequiredSpans) {
    all_spans += '"';
    all_spans += span;
    all_spans += "\"\n";
  }
  expect(CheckSpanCoverage(all_spans, "fake").empty(),
         "inventory-complete sources must pass");
  const std::string missing_one =
      all_spans.substr(all_spans.find('\n') + 1);  // drop the first span
  expect(CheckSpanCoverage(missing_one, "fake").size() == 1,
         "a removed operator span must be flagged");

  if (failures == 0) {
    std::printf("cobra_lint: self-test passed\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") return SelfTest();
  if (argc != 2) {
    std::fprintf(stderr, "usage: cobra_lint <repo-root> | --self-test\n");
    return 2;
  }
  return LintRepo(argv[1]);
}
