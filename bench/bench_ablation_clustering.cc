// Reproduces the §5.5 Boyen–Koller clustering experiment: the fully
// parameterized audio DBN filtered (a) exactly — all nodes of a slice in
// one cluster — and (b) with the non-observable intermediate nodes split
// from the query node, as proposed by Boyen and Koller [21]. The paper
// found that clustering "did not bring significant changes of the recall
// parameter, but resulted in a larger number of misclassified sequences".

#include <cstdio>

#include "bench/bench_util.h"
#include "f1/networks.h"
#include "f1/pipeline.h"

int main() {
  using namespace cobra::f1;
  using cobra::bench::CachedEvidence;
  using cobra::bench::CachedTimeline;

  cobra::bench::PrintHeader(
      "Ablation: Boyen-Koller cluster structure (audio DBN)");
  const RaceProfile profile =
      RaceProfile::GermanGp(cobra::bench::RaceSeconds());
  const RaceTimeline& timeline = CachedTimeline(profile);
  const RaceEvidence& evidence = CachedEvidence(profile, /*with_video=*/false);
  TrainingOptions training;

  auto dbn = TrainAudioDbn(AudioStructure::kFullyParameterized,
                           TemporalScheme::kFig8, evidence, training);
  if (!dbn.ok()) {
    std::printf("training failed\n");
    return 1;
  }
  const auto& slice = dbn->slice();
  const cobra::bayes::NodeId ea = slice.FindNode(kExcitedAnnouncer);

  // Cluster configurations.
  cobra::bayes::DynamicBayesianNetwork::Clusters exact;  // empty = one cluster
  cobra::bayes::DynamicBayesianNetwork::Clusters split;
  split.push_back({ea});
  std::vector<cobra::bayes::NodeId> others;
  for (cobra::bayes::NodeId n : dbn->chain_nodes()) {
    if (n != ea) others.push_back(n);
  }
  split.push_back(others);

  struct Row {
    const char* label;
    const cobra::bayes::DynamicBayesianNetwork::Clusters* clusters;
  };
  const Row kRows[] = {
      {"exact (one cluster per slice)", &exact},
      {"BK split: {EA} | {EN,PV,SQ}", &split},
  };
  for (const Row& row : kRows) {
    auto series = InferAudioDbnSeries(*dbn, evidence, *row.clusters);
    if (!series.ok()) {
      std::printf("  %s: inference failed\n", row.label);
      continue;
    }
    const auto segments = ExtractSegments(*series, 0.5, 2.0);
    const auto pr =
        ScoreSegments(segments, TruthSegments(timeline, "excited"));
    const int misclassified = pr.num_detections - pr.true_positives;
    std::printf(
        "  %-34s P=%3.0f%% R=%3.0f%%  misclassified segments=%d  det=%d\n",
        row.label, 100.0 * pr.precision, 100.0 * pr.recall, misclassified,
        pr.num_detections);
  }
  std::printf(
      "\nExpected shape (paper): recall roughly unchanged under BK "
      "clustering, but more misclassified sequences.\n");
  return 0;
}
