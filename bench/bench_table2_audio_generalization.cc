// Reproduces Table 2 of the paper: generalization of the selected audio
// model (the fully parameterized DBN, trained on the German GP) to the
// Belgian and USA Grand Prix.
//
// Paper reference values:  Belgian 77/79, USA 76/81 (precision/recall %).

#include <cstdio>

#include "bench/bench_util.h"
#include "f1/networks.h"
#include "f1/pipeline.h"

int main() {
  using namespace cobra::f1;
  using cobra::bench::CachedEvidence;
  using cobra::bench::CachedTimeline;

  cobra::bench::PrintHeader(
      "Table 2: audio DBN generalization (emphasized speech)");
  const double seconds = cobra::bench::RaceSeconds();
  const RaceProfile german = RaceProfile::GermanGp(seconds);

  TrainingOptions training;
  auto dbn = TrainAudioDbn(AudioStructure::kFullyParameterized,
                           TemporalScheme::kFig8,
                           CachedEvidence(german, /*with_video=*/false),
                           training);
  if (!dbn.ok()) {
    std::printf("training failed: %s\n", dbn.status().ToString().c_str());
    return 1;
  }

  struct Eval {
    RaceProfile profile;
    const char* paper_p;
    const char* paper_r;
  };
  const Eval kEvals[] = {
      {RaceProfile::BelgianGp(seconds), "77%", "79%"},
      {RaceProfile::UsaGp(seconds), "76%", "81%"},
  };
  for (const Eval& eval : kEvals) {
    const RaceEvidence& evidence =
        CachedEvidence(eval.profile, /*with_video=*/false);
    auto series = InferAudioDbnSeries(*dbn, evidence);
    if (!series.ok()) {
      std::printf("  %s: inference failed: %s\n", eval.profile.name.c_str(),
                  series.status().ToString().c_str());
      continue;
    }
    const auto segments = ExtractSegments(*series, 0.5, 2.0);
    const auto pr = ScoreSegments(
        segments, TruthSegments(CachedTimeline(eval.profile), "excited"));
    cobra::bench::PrintPrRow(eval.profile.name.c_str(), pr, eval.paper_p,
                             eval.paper_r);
  }
  std::printf(
      "\nExpected shape: precision/recall on unseen races stays close to "
      "(slightly below) the training race.\n");
  return 0;
}
