// Query-server serving capacity: latency percentiles and aggregate
// throughput against connection count, cold and warm, plus the headline
// isolation scenario — read throughput while a writer mutates and
// checkpoints concurrently.
//
// Scenarios (all over the in-process LocalConnection transport, so the
// numbers are serving + snapshot + query-evaluation cost, not sockets):
//   cold  — first pass per session count: includes snapshot publication
//           and allocator warm-up
//   warm  — second pass over the same server
//   checkpointing-writer — 16 sessions reading while one writer stores
//           events and runs PERSIST checkpoints into a MemFs store; the
//           reported qps_ratio_vs_1 compares against the warm single-client
//           run — snapshot isolation means reads must NOT collapse (the
//           acceptance bar is > 0.5x)
//
// Per-session request count defaults scale with the session count;
// override the base with COBRA_BENCH_SERVER_REQS. Results land in
// BENCH_server.json for machine consumption.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "base/io.h"
#include "base/logging.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/catalog.h"
#include "query/engine.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cobra::server {
namespace {

const char* kQueries[] = {
    "RETRIEVE highlight FROM 'race'",
    "RETRIEVE highlight FROM 'race' WHERE driver = 'ALESI'",
    "RETRIEVE highlight FROM 'race' OVERLAPPING caption WHERE driver = "
    "'ALESI'",
};
constexpr size_t kQueryMix = sizeof(kQueries) / sizeof(kQueries[0]);

size_t BaseRequests() {
  const char* env = std::getenv("COBRA_BENCH_SERVER_REQS");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v >= 16) return static_cast<size_t>(v);
  }
  return 512;
}

struct Row {
  std::string scenario;
  size_t sessions;
  size_t requests;
  double qps;
  double p50_ms;
  double p99_ms;
  double qps_ratio_vs_1;  // 0 when the scenario has no baseline
};

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"scenario\": \"%s\", \"sessions\": %zu, "
                 "\"requests\": %zu, \"qps\": %.0f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"qps_ratio_vs_1\": %.3f}%s\n",
                 r.scenario.c_str(), r.sessions, r.requests, r.qps, r.p50_ms,
                 r.p99_ms, r.qps_ratio_vs_1, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

double Percentile(std::vector<double>* sorted_ms, double p) {
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t idx = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms->size())));
  return (*sorted_ms)[idx];
}

/// Drives `sessions` concurrent LocalConnections, `per_session` blocking
/// queries each; fills the row's qps and latency percentiles.
Row RunScenario(QueryServer* server, const std::string& scenario,
                size_t sessions, size_t per_session) {
  std::vector<std::vector<double>> latencies_ms(sessions);
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([server, s, per_session, &latencies_ms] {
      LocalConnection conn(server);
      latencies_ms[s].reserve(per_session);
      for (size_t j = 0; j < per_session; ++j) {
        const auto t0 = std::chrono::steady_clock::now();
        protocol::Response response = conn.Query(kQueries[j % kQueryMix]);
        const auto t1 = std::chrono::steady_clock::now();
        COBRA_CHECK(response.ok);
        latencies_ms[s].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();

  std::vector<double> all_ms;
  for (const auto& per : latencies_ms) {
    all_ms.insert(all_ms.end(), per.begin(), per.end());
  }
  Row row;
  row.scenario = scenario;
  row.sessions = sessions;
  row.requests = all_ms.size();
  row.qps = static_cast<double>(all_ms.size()) / wall_s;
  row.p50_ms = Percentile(&all_ms, 0.50);
  row.p99_ms = Percentile(&all_ms, 0.99);
  row.qps_ratio_vs_1 = 0.0;
  return row;
}

int Main() {
  const size_t base = BaseRequests();
  std::printf("=== query server, base %zu requests/scenario ===\n", base);

  io::MemFs fs;
  kernel::Catalog catalog;
  model::VideoCatalog videos(&catalog);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry, "bench-store");
  engine.set_fs(&fs);
  auto id = videos.RegisterVideo("race", 5400.0);
  COBRA_CHECK(id.ok());
  // A result set big enough that evaluation dominates dispatch.
  for (size_t i = 0; i < 512; ++i) {
    model::EventRecord e;
    e.type = (i % 4 == 0) ? "caption" : "highlight";
    e.begin_sec = static_cast<double>(i * 10);
    e.end_sec = e.begin_sec + 6.0;
    e.confidence = 0.8;
    e.attrs["driver"] = (i % 3 == 0) ? "ALESI" : "BERGER";
    COBRA_CHECK(videos.StoreEvent(*id, e).ok());
  }

  ServerConfig config;
  config.workers = 4;
  config.max_queue = 128;  // blocking clients: admission never rejects here
  QueryServer server(&engine, &videos, &catalog, config);

  std::vector<Row> results;
  const size_t session_counts[] = {1, 4, 16, 64};
  double warm_single_qps = 0.0;
  for (const char* scenario : {"cold", "warm"}) {
    for (size_t sessions : session_counts) {
      const size_t per_session = std::max<size_t>(8, base / sessions);
      Row row = RunScenario(&server, scenario, sessions, per_session);
      if (std::string(scenario) == "warm" && sessions == 1) {
        warm_single_qps = row.qps;
      }
      std::printf("  %-6s %3zu sessions  %6zu reqs  %8.0f qps  "
                  "p50 %7.3f ms  p99 %7.3f ms\n",
                  scenario, sessions, row.requests, row.qps, row.p50_ms,
                  row.p99_ms);
      results.push_back(std::move(row));
    }
  }

  // The isolation scenario: 16 readers while a writer stores events and
  // checkpoints. Reads pin immutable snapshot epochs, so they must keep
  // flowing while the writer holds catalog/store locks.
  {
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      size_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        model::EventRecord e;
        e.type = "pit";
        e.begin_sec = static_cast<double>(10000 + n);
        e.end_sec = e.begin_sec + 1.0;
        COBRA_CHECK(videos.StoreEvent(*id, e).ok());
        if (++n % 16 == 0) {
          COBRA_CHECK(engine.Execute("PERSIST").ok());
        }
      }
    });
    Row row = RunScenario(&server, "checkpointing-writer", 16,
                          std::max<size_t>(8, base / 16));
    stop.store(true, std::memory_order_release);
    writer.join();
    row.qps_ratio_vs_1 = warm_single_qps > 0.0 ? row.qps / warm_single_qps : 0;
    std::printf("  writer  16 sessions  %6zu reqs  %8.0f qps  "
                "p50 %7.3f ms  p99 %7.3f ms  ratio-vs-1 %.2fx\n",
                row.requests, row.qps, row.p50_ms, row.p99_ms,
                row.qps_ratio_vs_1);
    if (row.qps_ratio_vs_1 <= 0.5) {
      std::printf("  WARNING: read throughput collapsed under the "
                  "checkpointing writer (<= 0.5x single-client)\n");
    }
    results.push_back(std::move(row));
  }

  WriteJson(results, "BENCH_server.json");
  return 0;
}

}  // namespace
}  // namespace cobra::server

int main() { return cobra::server::Main(); }
