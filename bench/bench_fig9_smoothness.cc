// Reproduces Fig. 9 of the paper: the raw output of a BN vs a DBN over a
// 300 s sequence. The BN posterior is noisy and "cannot be directly
// employed to distinguish the presence and time boundaries of the excited
// speech"; the DBN output is much smoother and can simply be thresholded.
//
// The bench prints both series (1 s resolution, ASCII sparkline plus CSV)
// and quantifies smoothness as the mean absolute per-clip change and the
// number of 0.5-crossings.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "f1/networks.h"
#include "f1/pipeline.h"

namespace {

double MeanAbsDelta(const std::vector<double>& s) {
  if (s.size() < 2) return 0.0;
  double acc = 0.0;
  for (size_t i = 1; i < s.size(); ++i) acc += std::abs(s[i] - s[i - 1]);
  return acc / static_cast<double>(s.size() - 1);
}

int Crossings(const std::vector<double>& s, double threshold) {
  int count = 0;
  for (size_t i = 1; i < s.size(); ++i) {
    if ((s[i - 1] >= threshold) != (s[i] >= threshold)) ++count;
  }
  return count;
}

void Sparkline(const char* label, const std::vector<double>& series,
               size_t begin, size_t end, size_t stride) {
  static const char* const kLevels = " .:-=+*#%@";
  std::printf("  %-4s |", label);
  for (size_t c = begin; c < end && c < series.size(); c += stride) {
    const int level =
        std::min(9, static_cast<int>(series[c] * 10.0));
    std::putchar(kLevels[level]);
  }
  std::printf("|\n");
}

}  // namespace

int main() {
  using namespace cobra::f1;
  using cobra::bench::CachedEvidence;
  using cobra::bench::CachedTimeline;

  cobra::bench::PrintHeader(
      "Fig 9: BN (noisy) vs DBN (smooth) inference over a 300 s sequence");
  const RaceProfile profile =
      RaceProfile::GermanGp(cobra::bench::RaceSeconds());
  const RaceTimeline& timeline = CachedTimeline(profile);
  const RaceEvidence& evidence = CachedEvidence(profile, /*with_video=*/false);

  TrainingOptions training;
  auto bn = TrainAudioBn(AudioStructure::kFullyParameterized, evidence,
                         training);
  auto dbn = TrainAudioDbn(AudioStructure::kFullyParameterized,
                           TemporalScheme::kFig8, evidence, training);
  if (!bn.ok() || !dbn.ok()) {
    std::printf("training failed\n");
    return 1;
  }
  auto bn_series = InferAudioBnSeries(*bn, evidence);
  auto dbn_series = InferAudioDbnSeries(*dbn, evidence);
  if (!bn_series.ok() || !dbn_series.ok()) {
    std::printf("inference failed\n");
    return 1;
  }

  const size_t window = std::min<size_t>(3000, bn_series->size());
  // Ground-truth sparkline for orientation.
  std::vector<double> truth(window, 0.0);
  for (size_t c = 0; c < window; ++c) {
    truth[c] = timeline.IsActive("excited", c * 0.1) ? 0.99 : 0.0;
  }
  std::printf("  first %zu s, one column per 3 s:\n",
              window / 10);
  Sparkline("true", truth, 0, window, 30);
  Sparkline("BN", *bn_series, 0, window, 30);
  Sparkline("DBN", *dbn_series, 0, window, 30);

  std::printf("\n  smoothness (lower = smoother):\n");
  std::printf("    BN  raw posterior: mean |delta| = %.4f, 0.5-crossings = %d\n",
              MeanAbsDelta(*bn_series), Crossings(*bn_series, 0.5));
  std::printf("    DBN filtered:      mean |delta| = %.4f, 0.5-crossings = %d\n",
              MeanAbsDelta(*dbn_series), Crossings(*dbn_series, 0.5));
  std::printf(
      "\nExpected shape (Fig 9): the BN output flickers (many threshold "
      "crossings); the DBN output forms clean plateaus.\n");
  return 0;
}
