// Reproduces Table 3 of the paper: the audio-visual DBN (Fig. 10 slice,
// Fig. 11 temporal arcs) applied to the German Grand Prix. Highlights use
// probability threshold 0.5 and minimal duration 6 s; the supplemental
// query nodes (Start / Fly-out / Passing) are classified per highlight
// segment by the most probable candidate, re-evaluated every 5 s for
// segments over 15 s. Training uses 6 sequences of 50 s.
//
// Paper reference values (German GP):
//   highlights 84/86, start 83/100, fly out 64/78, passing 79/50.

#include <cstdio>

#include "bench/bench_util.h"
#include "f1/networks.h"
#include "f1/pipeline.h"

int main() {
  using namespace cobra::f1;
  using cobra::bench::CachedEvidence;
  using cobra::bench::CachedTimeline;

  cobra::bench::PrintHeader("Table 3: audio-visual DBN on the German GP");
  const RaceProfile profile =
      RaceProfile::GermanGp(cobra::bench::RaceSeconds());
  const RaceTimeline& timeline = CachedTimeline(profile);
  const RaceEvidence& evidence = CachedEvidence(profile, /*with_video=*/true);

  TrainingOptions training;  // 6 x 50 s supervised segments
  auto dbn = TrainAudioVisualDbn(/*with_passing=*/true, evidence, training);
  if (!dbn.ok()) {
    std::printf("training failed: %s\n", dbn.status().ToString().c_str());
    return 1;
  }
  auto series = InferAudioVisual(*dbn, evidence);
  if (!series.ok()) {
    std::printf("inference failed: %s\n", series.status().ToString().c_str());
    return 1;
  }
  const HighlightResult result = ExtractHighlights(*series);

  cobra::bench::PrintPrRow(
      "Highlights",
      ScoreSegments(result.highlights, HighlightSegments(timeline)), "84%",
      "86%");

  struct SubEvent {
    const char* type;
    const char* paper_p;
    const char* paper_r;
  };
  const SubEvent kSubEvents[] = {
      {"start", "83%", "100%"},
      {"flyout", "64%", "78%"},
      {"passing", "79%", "50%"},
  };
  for (const SubEvent& sub : kSubEvents) {
    std::vector<Segment> detected;
    for (const auto& typed : result.sub_events) {
      if (typed.type == sub.type) detected.push_back(typed.span);
    }
    const auto pr =
        ScoreSegments(detected, TruthSegments(timeline, sub.type));
    cobra::bench::PrintPrRow(sub.type, pr, sub.paper_p, sub.paper_r);
  }
  std::printf(
      "\nExpected shape: highlights and start strong; fly-out and passing "
      "weaker (general low-level cues).\n");
  return 0;
}
