// Reproduces Table 4 of the paper: generalization of the audio-visual DBN
// (trained on the German GP) to the Belgian and USA Grand Prix, with and
// without the passing sub-network. The Belgian/USA broadcasts use different
// camera work (global pan), which swamps the general motion cue that the
// passing sub-network relies on — including the sub-network then *hurts*
// the whole model, which is why the paper excluded it after the Belgian
// results.
//
// Paper reference values:
//   Belgian (with passing subnet): highlights 44/53, start 100/67,
//                                  fly out 100/36, passing 28/31.
//   USA (without passing subnet):  highlights 73/76, start 100/50,
//                                  fly out 0/0 (no fly-outs in that race).

#include <cstdio>

#include "bench/bench_util.h"
#include "f1/networks.h"
#include "f1/pipeline.h"

namespace {

using namespace cobra::f1;

void Evaluate(const cobra::bayes::DynamicBayesianNetwork& dbn,
              const RaceProfile& profile, bool with_passing,
              const char* paper_hl_p, const char* paper_hl_r) {
  const RaceTimeline& timeline = cobra::bench::CachedTimeline(profile);
  const RaceEvidence& evidence =
      cobra::bench::CachedEvidence(profile, /*with_video=*/true);
  auto series = InferAudioVisual(dbn, evidence);
  if (!series.ok()) {
    std::printf("  %s: inference failed: %s\n", profile.name.c_str(),
                series.status().ToString().c_str());
    return;
  }
  const HighlightResult result = ExtractHighlights(*series);
  std::printf(" %s (%s passing subnet):\n", profile.name.c_str(),
              with_passing ? "with" : "without");
  cobra::bench::PrintPrRow(
      "Highlights",
      ScoreSegments(result.highlights, HighlightSegments(timeline)),
      paper_hl_p, paper_hl_r);
  for (const char* type : {"start", "flyout", "passing"}) {
    if (!with_passing && std::string(type) == "passing") continue;
    std::vector<Segment> detected;
    for (const auto& typed : result.sub_events) {
      if (typed.type == type) detected.push_back(typed.span);
    }
    const auto truth = TruthSegments(timeline, type);
    const auto pr = ScoreSegments(detected, truth);
    std::printf("  %-34s P=%3.0f%%  R=%3.0f%%  [det=%d truth=%d]\n", type,
                100.0 * pr.precision, 100.0 * pr.recall, pr.num_detections,
                pr.num_truth);
  }
}

}  // namespace

int main() {
  using cobra::bench::CachedEvidence;

  cobra::bench::PrintHeader(
      "Table 4: audio-visual DBN generalization, passing-subnet ablation");
  const double seconds = cobra::bench::RaceSeconds();
  const RaceProfile german = RaceProfile::GermanGp(seconds);
  const RaceEvidence& train = CachedEvidence(german, /*with_video=*/true);

  TrainingOptions training;
  auto with_passing = TrainAudioVisualDbn(true, train, training);
  auto without_passing = TrainAudioVisualDbn(false, train, training);
  if (!with_passing.ok() || !without_passing.ok()) {
    std::printf("training failed\n");
    return 1;
  }

  const RaceProfile belgian = RaceProfile::BelgianGp(seconds);
  const RaceProfile usa = RaceProfile::UsaGp(seconds);

  // The paper's Table 4 cells.
  Evaluate(*with_passing, belgian, true, "44%", "53%");
  Evaluate(*without_passing, usa, false, "73%", "76%");
  // The complementary cells, showing the crossover explicitly.
  std::printf("\n Complementary cells (not in the paper's table):\n");
  Evaluate(*without_passing, belgian, false, "n/a", "n/a");
  Evaluate(*with_passing, usa, true, "n/a", "n/a");

  std::printf(
      "\nExpected shape: on panning-camera races the passing sub-network "
      "degrades the whole model; excluding it recovers most of the "
      "highlight accuracy.\n");
  return 0;
}
