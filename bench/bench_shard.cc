// Scatter-gather throughput across shard counts (kernel/shard.h).
//
// Builds a 10M-frame sharded catalog whose float column is an ascending
// timestamp (the natural layout of decoded video frames), then times the
// paper-shaped access patterns at 1/2/4/8 shards:
//
//   windowed_scan — a ~5% time-window SelectRange with zone-map pruning:
//                   shards whose [min,max] misses the window are skipped
//                   entirely, so throughput scales with the shard count
//                   even on a single core;
//   full_scan     — the same operator over the whole domain (no shard
//                   prunable): measures pure exchange overhead;
//   sum           — scatter-gather aggregation with the order-preserving
//                   partial refold;
//   join          — sharded probe side against a broadcast build side.
//
// Every timed result is also checked byte-identical against the unsharded
// operator before timing, so the numbers can never come from a wrong plan.
// Row count defaults to 10M; override with COBRA_BENCH_ROWS. Results land
// in BENCH_shard.json.

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "base/trace.h"
#include "kernel/bat.h"
#include "kernel/exec_context.h"
#include "kernel/shard.h"

namespace cobra::kernel {
namespace {

size_t BenchRows() {
  const char* env = std::getenv("COBRA_BENCH_ROWS");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v >= 1000) return static_cast<size_t>(v);
  }
  return 10'000'000;
}

ExecContext Ctx(int shards) {
  ExecContext ctx;
  ctx.threadcnt = shards;
  ctx.shards = shards;
  return ctx;
}

double BestOfSeconds(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

struct Row {
  std::string op;
  int shards;
  size_t rows;
  double seconds;
  double speedup;  // vs the 1-shard run of the same operator
};

void RunOp(const std::string& op, size_t rows, int shards, double seconds,
           double one_shard_seconds, std::vector<Row>* out) {
  const double speedup = one_shard_seconds / seconds;
  std::printf("  %-14s shards=%d  %8.4fs  %12.0f rows/s  %5.2fx\n", op.c_str(),
              shards, seconds, rows / seconds, speedup);
  out->push_back({op, shards, rows, seconds, speedup});
}

void WriteJson(const std::vector<Row>& rows, const std::string& trace_json,
               const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"shards\": %d, \"rows\": %zu, "
                 "\"seconds\": %.6f, \"rows_per_sec\": %.0f, "
                 "\"speedup_vs_one_shard\": %.3f}%s\n",
                 r.op.c_str(), r.shards, r.rows, r.seconds, r.rows / r.seconds,
                 r.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"trace\": %s}\n", trace_json.c_str());
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

int Main() {
  const size_t n = BenchRows();
  std::printf("=== sharded scatter-gather, %zu-frame catalog ===\n", n);

  // Ascending timestamps: frame i arrives at i milliseconds. A time-window
  // query then touches a contiguous run of shards and zone maps prune the
  // rest — the case sharding is for.
  Bat times(TailType::kFloat);
  times.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    times.AppendFloat(static_cast<Oid>(i), static_cast<double>(i) * 1e-3);
  }
  // A ~5% window in the middle of the race.
  const double win_lo = static_cast<double>(n) * 1e-3 * 0.50;
  const double win_hi = static_cast<double>(n) * 1e-3 * 0.55;

  // Join: a 10%-sized probe of frame oids against a small broadcast side.
  Rng rng(42);
  const size_t join_rows = std::max<size_t>(n / 10, 1000);
  Bat probe(TailType::kOid);
  probe.Reserve(join_rows);
  for (size_t i = 0; i < join_rows; ++i) {
    probe.AppendOid(static_cast<Oid>(i),
                    static_cast<Oid>(rng.UniformInt(uint64_t{join_rows})));
  }
  Bat build(TailType::kFloat);
  build.Reserve(join_rows);
  for (size_t i = 0; i < join_rows; ++i) {
    build.AppendFloat(static_cast<Oid>(i), rng.Uniform());
  }

  // Unsharded references, computed once: every sharded run below must
  // reproduce these byte-for-byte before its timing counts.
  const ExecContext ref_ctx = Ctx(1);
  auto ref_window = times.SelectRange(win_lo, win_hi, ref_ctx);
  COBRA_CHECK(ref_window.ok());
  auto ref_sum = times.Sum(ref_ctx);
  COBRA_CHECK(ref_sum.ok());
  auto ref_join = Join(probe, build, ref_ctx);
  COBRA_CHECK(ref_join.ok());

  constexpr int kShardCounts[] = {1, 2, 4, 8};
  std::vector<Row> results;
  struct Baselines {
    double windowed = 0.0, full = 0.0, sum = 0.0, join = 0.0;
  } base;
  double windowed_8shard_speedup = 0.0;

  for (int shards : kShardCounts) {
    const ExecContext ctx = Ctx(shards);
    ShardedCatalog cat(static_cast<size_t>(shards), ctx.MorselRows());
    COBRA_CHECK(cat.Put("times", times).ok());
    COBRA_CHECK(cat.Put("probe", probe).ok());
    auto view = cat.View("times");
    COBRA_CHECK(view.ok());
    auto probe_view = cat.View("probe");
    COBRA_CHECK(probe_view.ok());
    auto stats = cat.ScanStats("times", ctx);
    COBRA_CHECK(stats.ok());
    ExchangeOptions pruned;
    pruned.scan_stats = &*stats;

    // Correctness gate before any timing.
    {
      auto w = ShardedSelectRange(*view, win_lo, win_hi, ctx, pruned);
      COBRA_CHECK(w.ok());
      COBRA_CHECK(w->size() == ref_window->size());
      for (size_t i = 0; i < w->size(); ++i) {
        COBRA_CHECK(w->HeadAt(i) == ref_window->HeadAt(i));
        COBRA_CHECK(SameBits(w->FloatAt(i), ref_window->FloatAt(i)));
      }
      auto s = ShardedSum(*view, ctx);
      COBRA_CHECK(s.ok());
      COBRA_CHECK(SameBits(*s, *ref_sum));
      auto j = ShardedJoin(*probe_view, build, ctx);
      COBRA_CHECK(j.ok());
      COBRA_CHECK(j->size() == ref_join->size());
      for (size_t i = 0; i < j->size(); ++i) {
        COBRA_CHECK(j->HeadAt(i) == ref_join->HeadAt(i));
        COBRA_CHECK(SameBits(j->FloatAt(i), ref_join->FloatAt(i)));
      }
    }

    const double windowed = BestOfSeconds(3, [&] {
      auto out = ShardedSelectRange(*view, win_lo, win_hi, ctx, pruned);
      COBRA_CHECK(out.ok());
    });
    const double full = BestOfSeconds(3, [&] {
      auto out = ShardedSelectRange(*view, 0.0, 1e18, ctx, pruned);
      COBRA_CHECK(out.ok());
    });
    const double sum = BestOfSeconds(3, [&] {
      auto out = ShardedSum(*view, ctx);
      COBRA_CHECK(out.ok());
    });
    const double join = BestOfSeconds(3, [&] {
      auto out = ShardedJoin(*probe_view, build, ctx);
      COBRA_CHECK(out.ok());
    });
    if (shards == 1) base = {windowed, full, sum, join};
    RunOp("windowed_scan", n, shards, windowed, base.windowed, &results);
    RunOp("full_scan", n, shards, full, base.full, &results);
    RunOp("sum", n, shards, sum, base.sum, &results);
    RunOp("join", join_rows, shards, join, base.join, &results);
    if (shards == 8) windowed_8shard_speedup = base.windowed / windowed;
  }

  // The acceptance line: zone-map pruning must buy the windowed scan at
  // least 3x at 8 shards over the unprunable 1-shard layout. Only enforced
  // at real row counts — tiny COBRA_BENCH_ROWS runs are noise-dominated.
  std::printf("windowed_scan speedup at 8 shards: %.2fx\n",
              windowed_8shard_speedup);
  if (n >= 1'000'000) COBRA_CHECK(windowed_8shard_speedup >= 3.0);

  // One traced pass at 8 shards, outside the timed loops: the exchange
  // span tree (shard counts, pruning) rides along in the artifact.
  trace::TraceSink sink;
  ExecContext traced = Ctx(8);
  traced.trace = &sink;
  {
    ShardedCatalog cat(8, traced.MorselRows());
    COBRA_CHECK(cat.Put("times", times).ok());
    auto view = cat.View("times");
    COBRA_CHECK(view.ok());
    auto stats = cat.ScanStats("times", traced);
    COBRA_CHECK(stats.ok());
    ExchangeOptions pruned;
    pruned.scan_stats = &*stats;
    COBRA_CHECK(ShardedSelectRange(*view, win_lo, win_hi, traced, pruned).ok());
    COBRA_CHECK(ShardedSum(*view, traced).ok());
  }
  COBRA_CHECK(trace::ValidateJson(sink.ToJson()).ok());

  WriteJson(results, sink.ToJson(), "BENCH_shard.json");
  return 0;
}

}  // namespace
}  // namespace cobra::kernel

int main() { return cobra::kernel::Main(); }
