// Reproduces the §5.5 temporal-dependency experiment: three DBNs share the
// fully parameterized slice structure but differ in the temporal arcs
// between consecutive slices. The paper found the Fig. 8 configuration
// (self-arcs everywhere, query broadcasting forward, hidden nodes feeding
// the query forward) to significantly outperform the "query only receives"
// configuration and slightly outperform the "no query broadcast" one.

#include <cstdio>

#include "bench/bench_util.h"
#include "f1/networks.h"
#include "f1/pipeline.h"

int main() {
  using namespace cobra::f1;
  using cobra::bench::CachedEvidence;
  using cobra::bench::CachedTimeline;

  cobra::bench::PrintHeader(
      "Ablation: temporal-dependency schemes of the audio DBN");
  const RaceProfile profile =
      RaceProfile::GermanGp(cobra::bench::RaceSeconds());
  const RaceTimeline& timeline = CachedTimeline(profile);
  const RaceEvidence& evidence = CachedEvidence(profile, /*with_video=*/false);
  TrainingOptions training;

  struct Row {
    const char* label;
    TemporalScheme scheme;
    const char* paper_note;
  };
  const Row kRows[] = {
      {"Fig 8 (self + query broadcast)", TemporalScheme::kFig8,
       "paper: best"},
      {"only query receives", TemporalScheme::kQueryOnlyReceives,
       "paper: significantly worse"},
      {"no query broadcast", TemporalScheme::kNoQueryBroadcast,
       "paper: slightly worse"},
  };
  for (const Row& row : kRows) {
    auto dbn = TrainAudioDbn(AudioStructure::kFullyParameterized, row.scheme,
                             evidence, training);
    if (!dbn.ok()) {
      std::printf("  %s: training failed\n", row.label);
      continue;
    }
    auto series = InferAudioDbnSeries(*dbn, evidence);
    if (!series.ok()) {
      std::printf("  %s: inference failed\n", row.label);
      continue;
    }
    const auto segments = ExtractSegments(*series, 0.5, 2.0);
    const auto pr =
        ScoreSegments(segments, TruthSegments(timeline, "excited"));
    const double f1 =
        pr.precision + pr.recall > 0
            ? 2.0 * pr.precision * pr.recall / (pr.precision + pr.recall)
            : 0.0;
    std::printf("  %-34s P=%3.0f%% R=%3.0f%% F1=%3.0f%%   (%s)\n", row.label,
                100.0 * pr.precision, 100.0 * pr.recall, 100.0 * f1,
                row.paper_note);
  }
  std::printf(
      "\nExpected shape: the Fig 8 arcs win; restricting temporal input to "
      "the query node costs the most.\n");
  return 0;
}
