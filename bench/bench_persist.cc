// Durability-layer throughput: checkpoint bandwidth, WAL replay rate, and
// end-to-end recovery latency.
//
// Three measurements over an in-memory filesystem (so the numbers are the
// serialization/replay cost, not the host disk):
//   checkpoint — full-catalog snapshot write, reported as MB/s of the
//                on-disk image
//   wal_replay — recovery of a store that only has a WAL (no snapshot),
//                reported as replayed rows/s
//   recovery   — recovery of a checkpointed store (snapshot load + short
//                WAL tail), reported as end-to-end latency and rows/s
// Row count defaults to 1M; override with COBRA_BENCH_ROWS. Results land in
// BENCH_persist.json for machine consumption.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "base/io.h"
#include "base/logging.h"
#include "base/rng.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/persist.h"

namespace cobra::kernel {
namespace {

size_t BenchRows() {
  const char* env = std::getenv("COBRA_BENCH_ROWS");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v >= 1000) return static_cast<size_t>(v);
  }
  return 1'000'000;
}

double BestOfSeconds(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string op;
  size_t rows;
  double seconds;
  double mb_per_s;    // 0 when the op is not bandwidth-shaped
  double rows_per_s;  // 0 when the op is not row-shaped
};

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"rows\": %zu, \"seconds\": %.6f, "
                 "\"mb_per_s\": %.2f, \"rows_per_s\": %.0f}%s\n",
                 r.op.c_str(), r.rows, r.seconds, r.mb_per_s, r.rows_per_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

int Main() {
  const size_t n = BenchRows();
  std::printf("=== durability layer, %zu rows ===\n", n);
  std::vector<Row> results;

  // The workload catalog: one int column and one duplicate-heavy string
  // column (the dictionary makes its snapshot image compact).
  Rng rng(42);
  Catalog catalog;
  {
    Bat ints(TailType::kInt);
    ints.Reserve(n);
    Bat strs(TailType::kStr);
    strs.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ints.AppendInt(static_cast<Oid>(i),
                     rng.UniformInt(int64_t{0}, int64_t{1023}));
      strs.AppendStr(static_cast<Oid>(i),
                     "team" + std::to_string(rng.UniformInt(uint64_t{64})));
    }
    catalog.Put("ints", std::move(ints));
    catalog.Put("strs", std::move(strs));
  }

  // Checkpoint bandwidth: snapshot the catalog into MemFs repeatedly (the
  // LSN does not advance, so every pass rewrites the same generation).
  io::MemFs snap_fs;
  PersistentStore snap_store(&snap_fs, "bench");
  COBRA_CHECK(snap_store.Open().ok());
  const double ckpt_s = BestOfSeconds(
      3, [&] { COBRA_CHECK(snap_store.Checkpoint(catalog).ok()); });
  const double snap_mb =
      static_cast<double>(snap_store.Stats().on_disk_bytes) / (1024 * 1024);
  std::printf("  checkpoint   %9.4fs   %8.1f MB/s\n", ckpt_s,
              snap_mb / ckpt_s);
  results.push_back({"checkpoint", n * 2, ckpt_s, snap_mb / ckpt_s, 0.0});

  // WAL replay rate: a store with no snapshot, one logged append per row.
  const size_t wal_rows = std::min<size_t>(n / 5, 200'000);
  io::MemFs wal_fs;
  {
    PersistentStore writer(&wal_fs, "bench");
    COBRA_CHECK(writer.Open().ok());
    COBRA_CHECK(writer.LogCreate("ints", TailType::kInt).ok());
    for (size_t i = 0; i < wal_rows; ++i) {
      COBRA_CHECK(writer
                      .LogAppend("ints", static_cast<Oid>(i),
                                 Value::Int(static_cast<int64_t>(i)))
                      .ok());
    }
  }
  const double replay_s = BestOfSeconds(3, [&] {
    Catalog recovered;
    PersistentStore reader(&wal_fs, "bench");
    auto info = reader.Recover(&recovered);
    COBRA_CHECK(info.ok() && info->wal_records_applied == wal_rows + 1);
  });
  std::printf("  wal_replay   %9.4fs   %8.0f rows/s\n", replay_s,
              wal_rows / replay_s);
  results.push_back(
      {"wal_replay", wal_rows, replay_s, 0.0, wal_rows / replay_s});

  // Recovery latency of the checkpointed store: snapshot load plus a short
  // WAL tail — the startup cost a crashed session pays.
  COBRA_CHECK(snap_store.LogAppend("ints", 0, Value::Int(1)).ok());
  const double recover_s = BestOfSeconds(3, [&] {
    Catalog recovered;
    PersistentStore reader(&snap_fs, "bench");
    COBRA_CHECK(reader.Recover(&recovered).ok());
  });
  std::printf("  recovery     %9.4fs   %8.0f rows/s\n", recover_s,
              (n * 2) / recover_s);
  results.push_back({"recovery", n * 2, recover_s, snap_mb / recover_s,
                     (n * 2) / recover_s});

  WriteJson(results, "BENCH_persist.json");
  return 0;
}

}  // namespace
}  // namespace cobra::kernel

int main() { return cobra::kernel::Main(); }
