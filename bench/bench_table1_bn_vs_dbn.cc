// Reproduces Table 1 of the paper: comparison of three Bayesian-network
// structures (Fig. 7a/b/c) against the fully parameterized DBN (Fig. 7a +
// Fig. 8 temporal arcs) for the detection of emphasized announcer speech on
// the German Grand Prix.
//
// Protocol (paper §5.5): parameters learned on a 300 s sequence (3000
// evidence vectors; the DBN sees the same window as 12 segments of 25 s);
// inference runs over the whole race. BN outputs cannot be thresholded
// directly (Fig. 9a) and are accumulated over time first; DBN outputs are
// thresholded as-is.
//
// Paper reference values:   BN(a) 60/67, BN(b) 54/62, BN(c) 50/76,
//                           DBN(a) 85/81  (precision/recall %).

#include <cstdio>

#include "bench/bench_util.h"
#include "f1/networks.h"
#include "f1/pipeline.h"

namespace {

using cobra::bench::CachedEvidence;
using cobra::bench::CachedTimeline;
using cobra::bench::PrintPrRow;
using namespace cobra::f1;

struct Row {
  const char* label;
  AudioStructure structure;
  const char* paper_p;
  const char* paper_r;
};

cobra::f1::PrecisionRecall ScoreSeries(const std::vector<double>& series,
                                       const RaceTimeline& timeline,
                                       double threshold = 0.5) {
  const auto segments = ExtractSegments(series, threshold, 2.0);
  return ScoreSegments(segments, TruthSegments(timeline, "excited"));
}

}  // namespace

int main() {
  cobra::bench::PrintHeader(
      "Table 1: BNs vs fully parameterized DBN (emphasized speech, "
      "German GP)");
  const RaceProfile profile = RaceProfile::GermanGp(cobra::bench::RaceSeconds());
  const RaceTimeline& timeline = CachedTimeline(profile);
  const RaceEvidence& evidence = CachedEvidence(profile, /*with_video=*/false);

  TrainingOptions training;  // 300 s window, 25 s DBN segments

  const Row kBnRows[] = {
      {"\"Fully parameterized\" BN (7a)", AudioStructure::kFullyParameterized,
       "60%", "67%"},
      {"BN with direct evidence (7b)", AudioStructure::kDirectEvidence, "54%",
       "62%"},
      {"Input/Output BN (7c)", AudioStructure::kInputOutput, "50%", "76%"},
  };
  for (const Row& row : kBnRows) {
    auto net = TrainAudioBn(row.structure, evidence, training);
    if (!net.ok()) {
      std::printf("  %s: training failed: %s\n", row.label,
                  net.status().ToString().c_str());
      continue;
    }
    auto series = InferAudioBnSeries(*net, evidence);
    if (!series.ok()) {
      std::printf("  %s: inference failed: %s\n", row.label,
                  series.status().ToString().c_str());
      continue;
    }
    // BN post-processing: accumulate the query node over time (3 s window).
    const auto accumulated = AccumulateOverTime(*series, 15);
    PrintPrRow(row.label,
               ScoreSeries(accumulated, timeline,
                           AdaptiveThreshold(accumulated)),
               row.paper_p, row.paper_r);
  }

  auto dbn = TrainAudioDbn(AudioStructure::kFullyParameterized,
                           TemporalScheme::kFig8, evidence, training);
  if (!dbn.ok()) {
    std::printf("  DBN training failed: %s\n",
                dbn.status().ToString().c_str());
    return 1;
  }
  auto series = InferAudioDbnSeries(*dbn, evidence);
  if (!series.ok()) {
    std::printf("  DBN inference failed: %s\n",
                series.status().ToString().c_str());
    return 1;
  }
  PrintPrRow("\"Fully parameterized\" DBN (7a+8)", ScoreSeries(*series, timeline),
             "85%", "81%");

  std::printf(
      "\nExpected shape: the three BNs cluster together; the DBN clearly "
      "dominates.\n");
  return 0;
}
