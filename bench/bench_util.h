#ifndef COBRA_BENCH_BENCH_UTIL_H_
#define COBRA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "f1/evaluation.h"
#include "f1/features.h"
#include "f1/timeline.h"

namespace cobra::bench {

/// Race length used by the experiment harnesses. The paper analyzed ~90 min
/// broadcasts; the default here is 10 min so that every bench finishes in
/// tens of seconds while keeping enough events per race for stable
/// precision/recall. Override with COBRA_RACE_SECONDS.
inline double RaceSeconds() {
  const char* env = std::getenv("COBRA_RACE_SECONDS");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v >= 120.0) return v;
  }
  return 600.0;
}

/// Extracts (and process-locally caches) evidence for a race profile.
inline const f1::RaceEvidence& CachedEvidence(const f1::RaceProfile& profile,
                                              bool with_video) {
  static std::map<std::string, f1::RaceEvidence>* const kCache =
      new std::map<std::string, f1::RaceEvidence>();
  const std::string key =
      profile.name + (with_video ? "+video" : "+audio");
  auto it = kCache->find(key);
  if (it != kCache->end()) return it->second;
  f1::RaceTimeline timeline = f1::GenerateTimeline(profile);
  f1::EvidenceOptions options;
  options.extract_video = with_video;
  auto [ins, inserted] =
      kCache->emplace(key, f1::ExtractEvidence(timeline, options));
  return ins->second;
}

/// Cached timeline (ground truth) for a profile.
inline const f1::RaceTimeline& CachedTimeline(const f1::RaceProfile& profile) {
  static std::map<std::string, f1::RaceTimeline>* const kCache =
      new std::map<std::string, f1::RaceTimeline>();
  auto it = kCache->find(profile.name);
  if (it != kCache->end()) return it->second;
  auto [ins, inserted] = kCache->emplace(profile.name,
                                         f1::GenerateTimeline(profile));
  return ins->second;
}

/// Prints one precision/recall row with the paper's reference values.
inline void PrintPrRow(const char* label, const f1::PrecisionRecall& pr,
                       const char* paper_precision,
                       const char* paper_recall) {
  std::printf("  %-34s P=%3.0f%% (paper %s)   R=%3.0f%% (paper %s)"
              "   [det=%d truth=%d]\n",
              label, 100.0 * pr.precision, paper_precision,
              100.0 * pr.recall, paper_recall, pr.num_detections,
              pr.num_truth);
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace cobra::bench

#endif  // COBRA_BENCH_BENCH_UTIL_H_
