// Reproduces the §5.2 speech endpoint comparison: the paper's STE + MFCC
// endpoint detector against entropy- and zero-crossing-based alternatives,
// which it found "powerless when applied in a noisy environment such as
// ours". The bench sweeps the engine-noise level and reports per-clip
// endpoint accuracy for each detector.

#include <cstdio>
#include <vector>

#include "audio/clip_features.h"
#include "audio/short_time_energy.h"
#include "bench/bench_util.h"
#include "dsp/spectral.h"
#include "f1/audio_synth.h"
#include "f1/timeline.h"

namespace {

using namespace cobra;
using namespace cobra::f1;

struct Scores {
  int correct = 0;
  int total = 0;
  double Accuracy() const {
    return total > 0 ? static_cast<double>(correct) / total : 0.0;
  }
};

}  // namespace

int main() {
  bench::PrintHeader(
      "§5.2: speech endpointing — STE+MFCC vs entropy vs zero crossings");
  RaceProfile profile = RaceProfile::GermanGp(
      std::min(300.0, cobra::bench::RaceSeconds()));
  const RaceTimeline timeline = GenerateTimeline(profile);

  std::printf("  %-18s %-12s %-12s %-12s\n", "noise level", "STE+MFCC",
              "entropy", "zero-cross");
  for (const double noise_scale : {0.5, 1.0, 2.0, 3.0}) {
    AudioSynthesizer::Options synth_options;
    // The sweep raises the *tonal* components of the track noise (engine
    // scream + rumble): harmonic noise is what makes a Formula 1 broadcast
    // acoustically hostile to entropy and zero-crossing endpointing — it
    // looks like speech to both — while the sub-band STE + MFCC detector
    // rejects it through the MFCC dynamics criterion.
    synth_options.noise_amplitude *= noise_scale;
    synth_options.rumble_amplitude *= noise_scale;
    synth_options.engine_tone_amplitude = 0.06 * noise_scale;
    AudioSynthesizer synth(timeline, synth_options);
    audio::ClipAnalyzer analyzer;

    // Calibrate the entropy / ZCR thresholds on the first 30 s (they are
    // given the best possible single threshold, which is generous).
    std::vector<double> entropies, zcrs;
    std::vector<uint8_t> truth_flags;
    const size_t calib = 300;
    Scores paper_scores, entropy_scores, zcr_scores;

    std::vector<double> ent_all, zcr_all;
    std::vector<uint8_t> speech_all;
    for (size_t c = 0; c < synth.num_clips(); ++c) {
      const auto samples = synth.SynthesizeClip(c);
      const bool truth = synth.ClipHasSpeech(c);
      const auto features = analyzer.Analyze(samples);
      paper_scores.total++;
      if (features.is_speech == truth) paper_scores.correct++;
      ent_all.push_back(dsp::SpectralEntropy(samples));
      zcr_all.push_back(dsp::ZeroCrossingRate(samples));
      speech_all.push_back(truth ? 1 : 0);
    }
    // Best threshold (direction-agnostic) for entropy / ZCR on the first
    // `calib` clips, evaluated on the rest.
    auto best_eval = [&](const std::vector<double>& values) {
      double best_acc = 0.0;
      double best_thr = 0.0;
      bool best_above = true;
      for (size_t i = 0; i < std::min(calib, values.size()); i += 3) {
        const double thr = values[i];
        for (bool above : {true, false}) {
          int ok = 0;
          for (size_t c = 0; c < std::min(calib, values.size()); ++c) {
            const bool pred = above ? values[c] > thr : values[c] < thr;
            if (pred == (speech_all[c] != 0)) ++ok;
          }
          const double acc = static_cast<double>(ok) / calib;
          if (acc > best_acc) {
            best_acc = acc;
            best_thr = thr;
            best_above = above;
          }
        }
      }
      Scores s;
      for (size_t c = calib; c < values.size(); ++c) {
        const bool pred =
            best_above ? values[c] > best_thr : values[c] < best_thr;
        s.total++;
        if (pred == (speech_all[c] != 0)) s.correct++;
      }
      return s;
    };
    entropy_scores = best_eval(ent_all);
    zcr_scores = best_eval(zcr_all);

    std::printf("  %-18.2f %-12.3f %-12.3f %-12.3f\n", noise_scale,
                paper_scores.Accuracy(), entropy_scores.Accuracy(),
                zcr_scores.Accuracy());
  }
  std::printf(
      "\nExpected shape (paper \u00a75.2): the multi-feature sub-band "
      "STE + MFCC detector is the stable choice across noise conditions; "
      "single-feature entropy endpointing is erratic under mixed "
      "harmonic/broadband noise and zero crossings degrade steadily as the "
      "track gets louder.\n");
  return 0;
}
