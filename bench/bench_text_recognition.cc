// Reproduces the §5.4 / Fig. 6 text detection + recognition evaluation:
// the superimposed-caption pipeline (shaded-region detection, duration
// criterion, min-intensity refinement, 4x interpolation, projection
// segmentation, length-bucketed pattern matching) runs over the rendered
// German GP broadcast and is scored against the ground-truth captions.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "base/strings.h"
#include "f1/pipeline.h"

int main() {
  using namespace cobra::f1;

  cobra::bench::PrintHeader("Fig 6 / §5.4: superimposed text recognition");
  const RaceProfile profile =
      RaceProfile::GermanGp(cobra::bench::RaceSeconds());
  const RaceTimeline& timeline = cobra::bench::CachedTimeline(profile);

  const auto events =
      ExtractTextEvents(timeline, FrameRenderer::Options{});
  const auto truth = timeline.EventsOfType("caption");

  int detected = 0;
  int words_total = 0;
  int words_correct = 0;
  for (const auto& t : truth) {
    const cobra::model::EventRecord* match = nullptr;
    for (const auto& e : events) {
      if (e.type != "caption") continue;
      if (e.begin_sec < t.end && t.begin < e.end_sec) {
        match = &e;
        break;
      }
    }
    const std::string truth_text = t.attrs.at("text");
    std::printf("  [%6.1f %6.1f] truth: %-24s -> %s\n", t.begin, t.end,
                truth_text.c_str(),
                match != nullptr ? match->attrs.at("text").c_str()
                                 : "(missed)");
    if (match == nullptr) continue;
    ++detected;
    // Word-level accuracy.
    const auto truth_words = cobra::StrSplit(truth_text, ' ');
    const auto got_words = cobra::StrSplit(match->attrs.at("text"), ' ');
    for (const auto& w : truth_words) {
      ++words_total;
      if (std::find(got_words.begin(), got_words.end(), w) !=
          got_words.end()) {
        ++words_correct;
      }
    }
  }
  const int false_captions = [&events, &truth] {
    int count = 0;
    for (const auto& e : events) {
      if (e.type != "caption") continue;
      bool overlaps = false;
      for (const auto& t : truth) {
        if (e.begin_sec < t.end && t.begin < e.end_sec) overlaps = true;
      }
      if (!overlaps) ++count;
    }
    return count;
  }();

  std::printf(
      "\n  caption detection: %d / %zu (false detections: %d)\n", detected,
      truth.size(), false_captions);
  if (words_total > 0) {
    std::printf("  word recognition accuracy on detected captions: "
                "%d / %d = %.0f%%\n",
                words_correct, words_total,
                100.0 * words_correct / words_total);
  }
  std::printf(
      "\nExpected shape (paper): captions are reliably detected and the "
      "small caption vocabulary is recognized with high accuracy.\n");
  return 0;
}
