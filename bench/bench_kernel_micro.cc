// Microbenchmarks backing the paper's §3 architecture claim: implementing
// extensions *inside* the DBMS (column-at-a-time BAT operators at the
// physical level) beats an application-level row loop over the same data.
// Measures BAT select/join against a naive row-struct scan, and the Moa
// projection path.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "moa/moa.h"

namespace {

using namespace cobra::kernel;

constexpr size_t kRows = 1 << 20;

/// Application-level representation: an array of fat row structs.
struct AppRow {
  Oid id;
  double value;
  std::string label;
  double padding[4];
};

const std::vector<AppRow>& AppRows() {
  static const std::vector<AppRow>* const kData = [] {
    cobra::Rng rng(7);
    auto* rows = new std::vector<AppRow>();
    rows->reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      rows->push_back(AppRow{static_cast<Oid>(i), rng.Uniform(),
                             "segment", {0, 0, 0, 0}});
    }
    return rows;
  }();
  return *kData;
}

const Bat& ValueBat() {
  static const Bat* const kBat = [] {
    cobra::Rng rng(7);
    auto* bat = new Bat(TailType::kFloat);
    for (size_t i = 0; i < kRows; ++i) {
      bat->AppendFloat(static_cast<Oid>(i), rng.Uniform());
    }
    return bat;
  }();
  return *kBat;
}

void BM_ApplicationLevelSelect(benchmark::State& state) {
  const auto& rows = AppRows();
  for (auto _ : state) {
    std::vector<Oid> hits;
    for (const AppRow& row : rows) {
      if (row.value >= 0.25 && row.value <= 0.75) hits.push_back(row.id);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ApplicationLevelSelect);

void BM_KernelBatSelect(benchmark::State& state) {
  const Bat& bat = ValueBat();
  for (auto _ : state) {
    auto selected = bat.SelectRange(0.25, 0.75);
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_KernelBatSelect);

void BM_KernelJoin(benchmark::State& state) {
  // (oid -> oid) join against (oid -> value): the decomposed-metadata path.
  static const Bat* const kLinks = [] {
    auto* links = new Bat(TailType::kOid);
    for (size_t i = 0; i < kRows / 4; ++i) {
      links->AppendOid(static_cast<Oid>(i), static_cast<Oid>(i * 4));
    }
    return links;
  }();
  const Bat& values = ValueBat();
  for (auto _ : state) {
    auto joined = Join(*kLinks, values);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * (kRows / 4));
}
BENCHMARK(BM_KernelJoin);

void BM_MoaProject(benchmark::State& state) {
  static Catalog* const kCatalog = new Catalog();
  static cobra::moa::MoaSession* const kSession = [] {
    auto* session = new cobra::moa::MoaSession(kCatalog);
    cobra::moa::ClassDef def;
    def.name = "clip";
    def.attributes = {{"score", TailType::kFloat}};
    (void)session->DefineClass(def);
    cobra::Rng rng(3);
    for (int i = 0; i < 100000; ++i) {
      auto oid = session->NewObject("clip");
      (void)session->SetAttr("clip", *oid, "score",
                             Value::Float(rng.Uniform()));
    }
    return session;
  }();
  const auto extent = kSession->Extent("clip");
  for (auto _ : state) {
    auto column = kSession->Project("clip", *extent, "score");
    benchmark::DoNotOptimize(column);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_MoaProject);

}  // namespace

BENCHMARK_MAIN();
