// Overhead of the pre-execution verifiers.
//
// Every MIL Execute() and every QueryEngine::Execute(text) now runs a static
// analysis pass before the first operator; this bench pins that tax as
// analysis-seconds next to full execution-seconds for representative inputs:
//
//   mil_pipeline   — the Fig. 4-shaped select/join/aggregate script
//   mil_wide       — a long straight-line script (500 statements)
//   mil_deep       — an expression near the nesting limit
//   query_text     — a RETRIEVE with WHERE + temporal clause
//
// `overhead` is analyze-seconds / execute-seconds of the same input (for
// query_text the denominator is ParseQuery, the smallest downstream stage).
//
// A second section measures the ACCURACY of the abstract interpreter's
// static cardinality intervals against observed execution: a traced plan
// matrix (selects of swept selectivity, joins, groups, at 1/2/7 shards)
// runs and every stamped span contributes (static_lo, static_hi, rows_out).
// Reported per shard count: containment rate (the soundness invariant —
// must be 1.0), finite-bound rate, exact rate (lo == hi), and the mean
// interval width relative to the input size (tightness; lower is better).
//
// Results go to BENCH_analyzer.json (schema-validated) for the trajectory.

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/diag.h"
#include "base/logging.h"
#include "base/strings.h"
#include "base/trace.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/mil.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace cobra::kernel {
namespace {

double BestOfSeconds(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string op;
  std::string variant;  // "analyze" or "execute"
  double seconds;
  double overhead;  // analyze seconds / execute seconds
};

void RunPair(const std::string& op, const std::function<void()>& analyze,
             const std::function<void()>& execute, std::vector<Row>* out) {
  const double analyze_s = BestOfSeconds(20, analyze);
  const double execute_s = BestOfSeconds(20, execute);
  std::printf("  %-12s analyze %9.6fs   execute %9.6fs   %6.3fx\n", op.c_str(),
              analyze_s, execute_s, analyze_s / execute_s);
  out->push_back({op, "analyze", analyze_s, analyze_s / execute_s});
  out->push_back({op, "execute", execute_s, analyze_s / execute_s});
}

// Aggregate over every span the abstract interpreter stamped with a
// static cardinality interval during a traced execution.
struct AccuracyStats {
  int shards = 0;
  size_t spans = 0;      // spans carrying has_static_card
  size_t contained = 0;  // static_lo <= rows_out <= static_hi
  size_t finite = 0;     // static_hi != kCardUnbounded
  size_t exact = 0;      // finite and static_lo == static_hi
  double width_sum = 0;  // sum of (static_hi - static_lo) over finite spans
};

void AccumulateSpan(const trace::Span& span, AccuracyStats* acc) {
  if (span.has_static_card) {
    ++acc->spans;
    if (span.static_lo <= span.rows_out && span.rows_out <= span.static_hi) {
      ++acc->contained;
    }
    if (span.static_hi != kCardUnbounded) {
      ++acc->finite;
      if (span.static_lo == span.static_hi) ++acc->exact;
      acc->width_sum += static_cast<double>(span.static_hi - span.static_lo);
    }
  }
  for (const auto& child : span.children) AccumulateSpan(*child, acc);
}

AccuracyStats MeasureAccuracy(Catalog* catalog, int shards,
                              const std::vector<std::string>& scripts) {
  AccuracyStats acc;
  acc.shards = shards;
  for (const std::string& script : scripts) {
    MilSession session(catalog);
    std::string traced = "trace on;\n";
    if (shards > 1) traced += StrFormat("shards(%d);\n", shards);
    traced += script;
    COBRA_CHECK(session.Execute(traced).ok());
    COBRA_CHECK(session.trace_sink() != nullptr);
    for (const auto& root : session.trace_sink()->roots()) {
      AccumulateSpan(*root, &acc);
    }
  }
  return acc;
}

void WriteJson(const std::vector<Row>& rows,
               const std::vector<AccuracyStats>& accuracy, const char* path) {
  std::string json = "{\"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += StrFormat(
        "  {\"op\": \"%s\", \"variant\": \"%s\", \"seconds\": %.8f, "
        "\"analyze_over_execute\": %.4f}%s\n",
        r.op.c_str(), r.variant.c_str(), r.seconds, r.overhead,
        i + 1 < rows.size() ? "," : "");
  }
  json += "],\n\"accuracy\": [\n";
  for (size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyStats& a = accuracy[i];
    const double spans = static_cast<double>(a.spans);
    json += StrFormat(
        "  {\"shards\": %d, \"spans\": %zu, \"containment_rate\": %.4f, "
        "\"finite_rate\": %.4f, \"exact_rate\": %.4f, "
        "\"mean_finite_width_rows\": %.2f}%s\n",
        a.shards, a.spans,
        a.spans == 0 ? 0.0 : static_cast<double>(a.contained) / spans,
        a.spans == 0 ? 0.0 : static_cast<double>(a.finite) / spans,
        a.spans == 0 ? 0.0 : static_cast<double>(a.exact) / spans,
        a.finite == 0 ? 0.0 : a.width_sum / static_cast<double>(a.finite),
        i + 1 < accuracy.size() ? "," : "");
  }
  json += "]}\n";
  COBRA_CHECK(trace::ValidateJson(json).ok());
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu rows, %zu accuracy rows)\n", path, rows.size(),
              accuracy.size());
}

int Main() {
  std::printf("=== pre-execution verifier overhead ===\n");

  Catalog catalog;
  {
    auto values = catalog.Create("values", TailType::kFloat);
    COBRA_CHECK(values.ok());
    for (int i = 0; i < 10'000; ++i) {
      (*values)->AppendFloat(static_cast<Oid>(i), i * 0.001);
    }
    auto links = catalog.Create("links", TailType::kOid);
    COBRA_CHECK(links.ok());
    for (int i = 0; i < 1'000; ++i) {
      (*links)->AppendOid(static_cast<Oid>(i), static_cast<Oid>(i * 7 % 999));
    }
  }
  MilAnalysisContext actx;
  actx.catalog = &catalog;

  std::vector<Row> results;

  const std::string pipeline =
      "VAR hits := select(bat('values'), 0.25, 0.65);\n"
      "VAR joined := join(bat('links'), bat('values'));\n"
      "PRINT count(hits);\nPRINT sum(joined);\n";
  RunPair(
      "mil_pipeline",
      [&] { COBRA_CHECK(AnalyzeMilScript(pipeline, actx).ok()); },
      [&] {
        MilSession session(&catalog);
        COBRA_CHECK(session.Execute(pipeline).ok());
      },
      &results);

  std::string wide = "VAR x := 1;\n";
  for (int i = 0; i < 500; ++i) {
    wide += "x := x;\nPRINT count(select(bat('values'), 0.1, 0.2));\n";
  }
  RunPair(
      "mil_wide", [&] { COBRA_CHECK(AnalyzeMilScript(wide, actx).ok()); },
      [&] {
        MilSession session(&catalog);
        COBRA_CHECK(session.Execute(wide).ok());
      },
      &results);

  std::string deep = "PRINT count(";
  for (int i = 0; i < 150; ++i) deep += "mirror(";
  deep += "bat('links')";
  for (int i = 0; i < 150; ++i) deep += ")";
  deep += ");";
  RunPair(
      "mil_deep", [&] { COBRA_CHECK(AnalyzeMilScript(deep, actx).ok()); },
      [&] {
        MilSession session(&catalog);
        COBRA_CHECK(session.Execute(deep).ok());
      },
      &results);

  const std::string query_text =
      "RETRIEVE highlight FROM 'german-gp' OVERLAPPING caption "
      "WHERE driver = 'Montoya' AND kind = 'pitstop' PREFER QUALITY";
  RunPair(
      "query_text",
      [&] { COBRA_CHECK(query::AnalyzeQueryText(query_text).ok()); },
      [&] { COBRA_CHECK(query::ParseQuery(query_text).ok()); }, &results);

  std::printf("=== static interval accuracy (traced plan matrix) ===\n");
  const std::vector<std::string> accuracy_scripts = {
      // selects swept from very selective to full-range to provably dead
      "PRINT count(select(bat('values'), 0.0, 0.1));",
      "PRINT count(select(bat('values'), 0.25, 0.65));",
      "PRINT count(select(bat('values'), -1.0, 100.0));",
      "PRINT count(select(bat('values'), 20.0, 30.0));",
      "PRINT count(select(select(bat('values'), 0.0, 5.0), 1.0, 2.0));",
      "PRINT sum(select(bat('values'), 0.1, 0.2));",
      "VAR g := group(bat('links'));\nPRINT count(g);",
      "VAR j := join(bat('links'), bat('values'));\nPRINT count(j);",
  };
  std::vector<AccuracyStats> accuracy;
  for (int shards : {1, 2, 7}) {
    AccuracyStats acc = MeasureAccuracy(&catalog, shards, accuracy_scripts);
    // Containment is the soundness invariant, not a tuning knob: every
    // stamped span must bracket its observed cardinality.
    COBRA_CHECK(acc.contained == acc.spans);
    std::printf(
        "  shards=%d  spans %3zu   contained %.4f   finite %.4f   "
        "exact %.4f   mean width %8.2f rows\n",
        acc.shards, acc.spans,
        static_cast<double>(acc.contained) / static_cast<double>(acc.spans),
        static_cast<double>(acc.finite) / static_cast<double>(acc.spans),
        static_cast<double>(acc.exact) / static_cast<double>(acc.spans),
        acc.finite == 0 ? 0.0
                        : acc.width_sum / static_cast<double>(acc.finite));
    accuracy.push_back(acc);
  }

  WriteJson(results, accuracy, "BENCH_analyzer.json");
  return 0;
}

}  // namespace
}  // namespace cobra::kernel

int main() { return cobra::kernel::Main(); }
