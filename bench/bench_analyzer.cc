// Overhead of the pre-execution verifiers.
//
// Every MIL Execute() and every QueryEngine::Execute(text) now runs a static
// analysis pass before the first operator; this bench pins that tax as
// analysis-seconds next to full execution-seconds for representative inputs:
//
//   mil_pipeline   — the Fig. 4-shaped select/join/aggregate script
//   mil_wide       — a long straight-line script (500 statements)
//   mil_deep       — an expression near the nesting limit
//   query_text     — a RETRIEVE with WHERE + temporal clause
//
// `overhead` is analyze-seconds / execute-seconds of the same input (for
// query_text the denominator is ParseQuery, the smallest downstream stage).
// Results go to BENCH_analyzer.json for the perf trajectory.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/diag.h"
#include "base/logging.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/mil.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace cobra::kernel {
namespace {

double BestOfSeconds(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string op;
  std::string variant;  // "analyze" or "execute"
  double seconds;
  double overhead;  // analyze seconds / execute seconds
};

void RunPair(const std::string& op, const std::function<void()>& analyze,
             const std::function<void()>& execute, std::vector<Row>* out) {
  const double analyze_s = BestOfSeconds(20, analyze);
  const double execute_s = BestOfSeconds(20, execute);
  std::printf("  %-12s analyze %9.6fs   execute %9.6fs   %6.3fx\n", op.c_str(),
              analyze_s, execute_s, analyze_s / execute_s);
  out->push_back({op, "analyze", analyze_s, analyze_s / execute_s});
  out->push_back({op, "execute", execute_s, analyze_s / execute_s});
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"variant\": \"%s\", \"seconds\": %.8f, "
                 "\"analyze_over_execute\": %.4f}%s\n",
                 r.op.c_str(), r.variant.c_str(), r.seconds, r.overhead,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

int Main() {
  std::printf("=== pre-execution verifier overhead ===\n");

  Catalog catalog;
  {
    auto values = catalog.Create("values", TailType::kFloat);
    COBRA_CHECK(values.ok());
    for (int i = 0; i < 10'000; ++i) {
      (*values)->AppendFloat(static_cast<Oid>(i), i * 0.001);
    }
    auto links = catalog.Create("links", TailType::kOid);
    COBRA_CHECK(links.ok());
    for (int i = 0; i < 1'000; ++i) {
      (*links)->AppendOid(static_cast<Oid>(i), static_cast<Oid>(i * 7 % 999));
    }
  }
  MilAnalysisContext actx;
  actx.catalog = &catalog;

  std::vector<Row> results;

  const std::string pipeline =
      "VAR hits := select(bat('values'), 0.25, 0.65);\n"
      "VAR joined := join(bat('links'), bat('values'));\n"
      "PRINT count(hits);\nPRINT sum(joined);\n";
  RunPair(
      "mil_pipeline",
      [&] { COBRA_CHECK(AnalyzeMilScript(pipeline, actx).ok()); },
      [&] {
        MilSession session(&catalog);
        COBRA_CHECK(session.Execute(pipeline).ok());
      },
      &results);

  std::string wide = "VAR x := 1;\n";
  for (int i = 0; i < 500; ++i) {
    wide += "x := x;\nPRINT count(select(bat('values'), 0.1, 0.2));\n";
  }
  RunPair(
      "mil_wide", [&] { COBRA_CHECK(AnalyzeMilScript(wide, actx).ok()); },
      [&] {
        MilSession session(&catalog);
        COBRA_CHECK(session.Execute(wide).ok());
      },
      &results);

  std::string deep = "PRINT count(";
  for (int i = 0; i < 150; ++i) deep += "mirror(";
  deep += "bat('links')";
  for (int i = 0; i < 150; ++i) deep += ")";
  deep += ");";
  RunPair(
      "mil_deep", [&] { COBRA_CHECK(AnalyzeMilScript(deep, actx).ok()); },
      [&] {
        MilSession session(&catalog);
        COBRA_CHECK(session.Execute(deep).ok());
      },
      &results);

  const std::string query_text =
      "RETRIEVE highlight FROM 'german-gp' OVERLAPPING caption "
      "WHERE driver = 'Montoya' AND kind = 'pitstop' PREFER QUALITY";
  RunPair(
      "query_text",
      [&] { COBRA_CHECK(query::AnalyzeQueryText(query_text).ok()); },
      [&] { COBRA_CHECK(query::ParseQuery(query_text).ok()); }, &results);

  WriteJson(results, "BENCH_analyzer.json");
  return 0;
}

}  // namespace
}  // namespace cobra::kernel

int main() { return cobra::kernel::Main(); }
