// Streaming-ingestion performance trajectory: sustained append throughput,
// continuous-query (WATCH) evaluation latency, and the warm-probe speedup
// bought by incremental index maintenance.
//
// Scenarios:
//   append — StreamBat append throughput (float tail, segment seals every
//            256 rows), volatile vs WAL-attached (MemFs store), both with
//            index maintenance on
//   watch-eval — three standing WATCH queries pumped after every replay
//            batch; per-pump latency p50/p99 plus notification volume
//   warm-probe — alternating append + CountEq workload: append maintenance
//            keeps the accreted index fresh so every probe is an O(1)
//            bucket lookup, vs the default invalidate-on-append baseline
//            where every probe rescans; speedup_x is the headline number
//
// Override the base scale with COBRA_BENCH_STREAM_ROWS. Results land in
// BENCH_stream.json for machine consumption.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/io.h"
#include "base/logging.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/catalog.h"
#include "kernel/persist.h"
#include "kernel/stream.h"
#include "query/continuous.h"
#include "query/engine.h"
#include "query/snapshot.h"

namespace cobra::kernel {
namespace {

size_t BaseRows() {
  const char* env = std::getenv("COBRA_BENCH_STREAM_ROWS");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v >= 1024) return static_cast<size_t>(v);
  }
  return 200000;
}

struct Row {
  std::string scenario;
  std::string variant;
  size_t rows;
  double rows_per_sec;
  double p50_ms;
  double p99_ms;
  double speedup_x;  // 0 when the scenario has no baseline
};

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"scenario\": \"%s\", \"variant\": \"%s\", "
                 "\"rows\": %zu, \"rows_per_sec\": %.0f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"speedup_x\": %.2f}%s\n",
                 r.scenario.c_str(), r.variant.c_str(), r.rows,
                 r.rows_per_sec, r.p50_ms, r.p99_ms, r.speedup_x,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

double Percentile(std::vector<double>* sorted_ms, double p) {
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t idx = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms->size())));
  return (*sorted_ms)[idx];
}

double AppendValue(size_t i) {
  return static_cast<double>(i % 997) + 0.25;
}

/// Appends `rows` floats through a StreamBat; `store` may be null for the
/// volatile variant. Returns rows/sec.
Row RunAppend(const std::string& variant, size_t rows,
              PersistentStore* store, io::Fs* fs) {
  Catalog catalog;
  COBRA_CHECK(catalog.Create("telemetry", TailType::kFloat).ok());
  if (store != nullptr) {
    COBRA_CHECK(store->LogCreate("telemetry", TailType::kFloat).ok());
  }
  StreamBat::Options opts;
  opts.segment_rows = 256;
  auto stream = StreamBat::Attach(&catalog, "telemetry", opts, store);
  COBRA_CHECK(stream.ok());

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < rows; ++i) {
    COBRA_CHECK(stream->Append(static_cast<Oid>(i),
                               Value::Float(AppendValue(i)))
                    .ok());
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  (void)fs;
  Row row;
  row.scenario = "append";
  row.variant = variant;
  row.rows = rows;
  row.rows_per_sec = static_cast<double>(rows) / wall_s;
  row.p50_ms = 0.0;
  row.p99_ms = 0.0;
  row.speedup_x = 0.0;
  std::printf("  append      %-10s %8zu rows  %10.0f rows/s  (%zu seals)\n",
              variant.c_str(), rows, row.rows_per_sec,
              static_cast<size_t>(stream->stats().seals));
  return row;
}

/// Three standing watches pumped after every batch of stored events;
/// measures per-pump latency.
Row RunWatchEval(size_t batches, size_t batch_rows) {
  kernel::Catalog catalog;
  model::VideoCatalog videos(&catalog);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry);
  auto id = videos.RegisterVideo("race", 1e9);
  COBRA_CHECK(id.ok());
  query::SnapshotManager snapshots(&videos, &catalog);
  query::ContinuousQueryManager watches(&engine, &snapshots, &catalog);
  for (const char* text :
       {"WATCH RETRIEVE highlight FROM 'race'",
        "WATCH RETRIEVE highlight FROM 'race' WHERE driver = 'ALESI'",
        "WATCH RETRIEVE pit FROM 'race' WINDOW 300s"}) {
    COBRA_CHECK(watches.RegisterText(text).ok());
  }

  std::vector<double> pump_ms;
  pump_ms.reserve(batches);
  size_t notifications = 0;
  size_t event = 0;
  for (size_t b = 0; b < batches; ++b) {
    for (size_t j = 0; j < batch_rows; ++j, ++event) {
      model::EventRecord e;
      e.type = (event % 5 == 0) ? "pit" : "highlight";
      e.begin_sec = static_cast<double>(event * 7);
      e.end_sec = e.begin_sec + 5.0;
      e.confidence = 0.9;
      if (event % 3 == 0) e.attrs["driver"] = "ALESI";
      COBRA_CHECK(videos.StoreEvent(*id, e).ok());
    }
    std::vector<query::WatchNotification> out;
    const auto t0 = std::chrono::steady_clock::now();
    COBRA_CHECK(watches.Pump(&out).ok());
    const auto t1 = std::chrono::steady_clock::now();
    pump_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    notifications += out.size();
  }

  Row row;
  row.scenario = "watch-eval";
  row.variant = "3-watches";
  row.rows = batches * batch_rows;
  row.rows_per_sec =
      static_cast<double>(notifications);  // notification volume, not rate
  row.p50_ms = Percentile(&pump_ms, 0.50);
  row.p99_ms = Percentile(&pump_ms, 0.99);
  row.speedup_x = 0.0;
  std::printf("  watch-eval  %-10s %8zu rows  %zu pumps  p50 %7.4f ms  "
              "p99 %7.4f ms  (%zu notifications)\n",
              row.variant.c_str(), row.rows, batches, row.p50_ms, row.p99_ms,
              notifications);
  return row;
}

/// Alternating append + CountEq: with maintenance the accreted index stays
/// fresh across appends (probe = bucket lookup); without it every append
/// invalidates and CountEq — probe-only by contract — rescans.
double RunProbeWorkload(bool maintain, size_t rows) {
  Bat bat(TailType::kInt);
  for (size_t i = 0; i < Bat::kAutoIndexMinRows * 4; ++i) {
    bat.AppendInt(static_cast<Oid>(i), static_cast<int64_t>(i % 64));
  }
  bat.BuildTailIndex();
  bat.set_append_maintenance(maintain);
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t sink = 0;
  for (size_t i = 0; i < rows; ++i) {
    bat.AppendInt(static_cast<Oid>(100000 + i), static_cast<int64_t>(i % 64));
    auto count = bat.CountEq(Value::Int(static_cast<int64_t>(i % 64)));
    COBRA_CHECK(count.ok());
    sink += *count;
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  COBRA_CHECK(sink > 0);
  return wall_s;
}

int Main() {
  const size_t base = BaseRows();
  std::printf("=== streaming ingestion, base %zu rows ===\n", base);
  std::vector<Row> results;

  results.push_back(RunAppend("volatile", base, nullptr, nullptr));
  {
    io::MemFs fs;
    PersistentStore store(&fs, "bench-stream-store");
    COBRA_CHECK(store.Open().ok());
    results.push_back(RunAppend("wal-memfs", base, &store, &fs));
  }

  results.push_back(RunWatchEval(/*batches=*/200, /*batch_rows=*/25));

  {
    const size_t probe_rows = std::min<size_t>(base / 8, 8192);
    const double maintained_s = RunProbeWorkload(true, probe_rows);
    const double baseline_s = RunProbeWorkload(false, probe_rows);
    Row row;
    row.scenario = "warm-probe";
    row.variant = "maintained-vs-rescan";
    row.rows = probe_rows;
    row.rows_per_sec = static_cast<double>(probe_rows) / maintained_s;
    row.p50_ms = 0.0;
    row.p99_ms = 0.0;
    row.speedup_x = maintained_s > 0.0 ? baseline_s / maintained_s : 0.0;
    std::printf("  warm-probe  %-10s %8zu rows  maintained %.3fs  "
                "rescan %.3fs  speedup %.1fx\n",
                "int-tail", probe_rows, maintained_s, baseline_s,
                row.speedup_x);
    if (row.speedup_x <= 1.0) {
      std::printf("  WARNING: append maintenance did not beat the "
                  "invalidate-and-rescan baseline\n");
    }
    results.push_back(std::move(row));
  }

  WriteJson(results, "BENCH_stream.json");
  return 0;
}

}  // namespace
}  // namespace cobra::kernel

int main() { return cobra::kernel::Main(); }
