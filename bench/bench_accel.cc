// Warm-index vs cold-scan throughput for the self-organizing acceleration
// layer.
//
// Three comparisons, each repeated-probe shaped (the F1 workload):
//   select_eq / select_str — persistent tail index vs full column scan
//   join                   — persistent head index on the build side vs a
//                            throwaway hash table rebuilt per call
//   group_str              — dictionary-code grouping vs hashing raw string
//                            bytes (local baseline)
// Row count defaults to 1M; override with COBRA_BENCH_ROWS. Results are
// written to BENCH_accel.json for machine consumption; `speedup` is
// cold-seconds / warm-seconds of the same operator.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "base/trace.h"
#include "kernel/bat.h"
#include "kernel/exec_context.h"

namespace cobra::kernel {
namespace {

size_t BenchRows() {
  const char* env = std::getenv("COBRA_BENCH_ROWS");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v >= 1000) return static_cast<size_t>(v);
  }
  return 1'000'000;
}

double BestOfSeconds(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string op;
  std::string variant;  // "cold" or "warm"
  size_t rows;
  double seconds;
  double speedup;  // cold seconds / this variant's seconds
};

void RunPair(const std::string& op, size_t rows,
             const std::function<void()>& cold,
             const std::function<void()>& warm, std::vector<Row>* out) {
  const double cold_s = BestOfSeconds(5, cold);
  const double warm_s = BestOfSeconds(5, warm);
  std::printf("  %-12s cold %9.5fs   warm %9.5fs   %6.1fx\n", op.c_str(),
              cold_s, warm_s, cold_s / warm_s);
  out->push_back({op, "cold", rows, cold_s, 1.0});
  out->push_back({op, "warm", rows, warm_s, cold_s / warm_s});
}

void WriteJson(const std::vector<Row>& rows, const std::string& trace_json,
               const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"variant\": \"%s\", \"rows\": %zu, "
                 "\"seconds\": %.6f, \"speedup_vs_cold\": %.3f}%s\n",
                 r.op.c_str(), r.variant.c_str(), r.rows, r.seconds,
                 r.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"trace\": %s}\n", trace_json.c_str());
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

int Main() {
  const size_t n = BenchRows();
  std::printf("=== self-organizing BAT acceleration, %zu rows ===\n", n);

  // The cold plans: indexes disabled, serial — the pre-acceleration kernel.
  ExecContext cold;
  cold.auto_index = false;

  Rng rng(42);
  Bat ints(TailType::kInt);
  ints.Reserve(n);
  Bat strs(TailType::kStr);
  strs.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ints.AppendInt(static_cast<Oid>(i),
                   rng.UniformInt(int64_t{0}, int64_t{1023}));
    strs.AppendStr(static_cast<Oid>(i),
                   "team" + std::to_string(rng.UniformInt(uint64_t{64})));
  }

  std::vector<Row> results;

  // Repeated equality probes: warm runs reuse the persistent tail index
  // (built once, outside the timed region, as a first probe would).
  ints.BuildTailIndex();
  strs.BuildTailIndex();
  RunPair(
      "select_eq", n,
      [&] { COBRA_CHECK(ints.SelectEq(Value::Int(512), cold).ok()); },
      [&] { COBRA_CHECK(ints.SelectEq(Value::Int(512)).ok()); }, &results);
  RunPair(
      "select_str", n,
      [&] { COBRA_CHECK(strs.SelectStr("team7", cold).ok()); },
      [&] { COBRA_CHECK(strs.SelectStr("team7").ok()); }, &results);

  // Repeated joins against a large build side: cold rebuilds the hash
  // table per call; warm probes the accreted head index.
  const size_t probe_rows = std::max<size_t>(n / 10, 1000);
  Bat probe(TailType::kOid);
  probe.Reserve(probe_rows);
  for (size_t i = 0; i < probe_rows; ++i) {
    probe.AppendOid(static_cast<Oid>(i),
                    static_cast<Oid>(rng.UniformInt(uint64_t{n})));
  }
  ints.BuildHeadIndex();
  RunPair(
      "join", probe_rows,
      [&] { COBRA_CHECK(Join(probe, ints, cold).ok()); },
      [&] { COBRA_CHECK(Join(probe, ints).ok()); }, &results);

  // Grouping a repetitive string column: dictionary codes vs raw bytes.
  RunPair(
      "group_str", n,
      [&] {
        // Baseline: hash the string bytes, as the pre-dictionary kernel did.
        std::unordered_map<std::string, Oid> group_of;
        Bat out(TailType::kOid);
        out.Reserve(strs.size());
        for (size_t i = 0; i < strs.size(); ++i) {
          auto [it, inserted] = group_of.try_emplace(
              strs.StrAt(i), static_cast<Oid>(group_of.size()));
          out.AppendOid(strs.HeadAt(i), it->second);
        }
        COBRA_CHECK(out.size() == strs.size());
      },
      [&] {
        std::vector<size_t> reps;
        Bat out = Group(strs, &reps);
        COBRA_CHECK(out.size() == strs.size());
      },
      &results);

  // One traced pass per operator, outside the timed loops: the span tree
  // (row counts, index and dictionary counters) rides along in the JSON
  // artifact so a perf regression can be read next to the plan that ran.
  trace::TraceSink sink;
  ExecContext traced;
  traced.trace = &sink;
  COBRA_CHECK(ints.SelectEq(Value::Int(512), traced).ok());
  COBRA_CHECK(strs.SelectStr("team7", traced).ok());
  COBRA_CHECK(Join(probe, ints, traced).ok());
  {
    std::vector<size_t> reps;
    Bat out = Group(strs, &reps, traced);
    COBRA_CHECK(out.size() == strs.size());
  }
  COBRA_CHECK(trace::ValidateJson(sink.ToJson()).ok());

  WriteJson(results, sink.ToJson(), "BENCH_accel.json");
  return 0;
}

}  // namespace
}  // namespace cobra::kernel

int main() { return cobra::kernel::Main(); }
