// Serial-vs-parallel throughput for the morsel-parallel BAT operators.
//
// Runs each hot operator over a large float BAT at threadcnt 1/2/4/8 and
// reports rows/s plus speedup over the single-thread run of the same code
// path. Row count defaults to 10M; override with COBRA_BENCH_ROWS. Results
// are also written to BENCH_kernel.json for machine consumption.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "base/trace.h"
#include "kernel/bat.h"
#include "kernel/exec_context.h"

namespace cobra::kernel {
namespace {

size_t BenchRows() {
  const char* env = std::getenv("COBRA_BENCH_ROWS");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v >= 1000) return static_cast<size_t>(v);
  }
  return 10'000'000;
}

ExecContext Ctx(int threadcnt) {
  ExecContext ctx;
  ctx.threadcnt = threadcnt;
  return ctx;
}

double BestOfSeconds(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string op;
  int threadcnt;
  size_t rows;
  double seconds;
  double speedup;  // vs the threadcnt=1 run of the same operator
};

void RunOp(const std::string& op, size_t rows,
           const std::function<void(const ExecContext&)>& body,
           std::vector<Row>* out) {
  constexpr int kThreadcnts[] = {1, 2, 4, 8};
  double serial_seconds = 0.0;
  for (int threadcnt : kThreadcnts) {
    const ExecContext ctx = Ctx(threadcnt);
    const double seconds = BestOfSeconds(3, [&] { body(ctx); });
    if (threadcnt == 1) serial_seconds = seconds;
    const double speedup = serial_seconds / seconds;
    std::printf("  %-14s threadcnt=%d  %8.4fs  %12.0f rows/s  %5.2fx\n",
                op.c_str(), threadcnt, seconds, rows / seconds, speedup);
    out->push_back({op, threadcnt, rows, seconds, speedup});
  }
}

void WriteJson(const std::vector<Row>& rows, const std::string& trace_json,
               const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"threadcnt\": %d, \"rows\": %zu, "
                 "\"seconds\": %.6f, \"rows_per_sec\": %.0f, "
                 "\"speedup_vs_serial\": %.3f}%s\n",
                 r.op.c_str(), r.threadcnt, r.rows, r.seconds,
                 r.rows / r.seconds, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"trace\": %s}\n", trace_json.c_str());
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

int Main() {
  const size_t n = BenchRows();
  std::printf("=== morsel-parallel kernel operators, %zu-row float BAT ===\n",
              n);

  Rng rng(42);
  Bat floats(TailType::kFloat);
  floats.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    floats.AppendFloat(static_cast<Oid>(i), rng.Uniform());
  }

  // Join/group inputs are smaller: their outputs/tables are row-sized, so
  // full 10M rows would be dominated by allocation rather than the operator.
  const size_t join_rows = std::max<size_t>(n / 10, 1000);
  Bat probe(TailType::kOid);
  probe.Reserve(join_rows);
  Bat build(TailType::kFloat);
  build.Reserve(join_rows);
  Bat groups(TailType::kInt);
  groups.Reserve(join_rows);
  for (size_t i = 0; i < join_rows; ++i) {
    probe.AppendOid(static_cast<Oid>(i),
                    static_cast<Oid>(rng.UniformInt(uint64_t{join_rows})));
    build.AppendFloat(static_cast<Oid>(i), rng.Uniform());
    groups.AppendInt(static_cast<Oid>(i), rng.UniformInt(int64_t{0}, 4095));
  }

  std::vector<Row> results;
  RunOp("select_range", n, [&](const ExecContext& ctx) {
    auto out = floats.SelectRange(0.25, 0.75, ctx);
    COBRA_CHECK(out.ok());
  }, &results);
  RunOp("sum", n, [&](const ExecContext& ctx) {
    auto out = floats.Sum(ctx);
    COBRA_CHECK(out.ok());
  }, &results);
  RunOp("max", n, [&](const ExecContext& ctx) {
    auto out = floats.Max(ctx);
    COBRA_CHECK(out.ok());
  }, &results);
  RunOp("join", join_rows, [&](const ExecContext& ctx) {
    auto out = Join(probe, build, ctx);
    COBRA_CHECK(out.ok());
  }, &results);
  RunOp("group", join_rows, [&](const ExecContext& ctx) {
    std::vector<size_t> reps;
    Bat out = Group(groups, &reps, ctx);
    COBRA_CHECK(!out.empty());
  }, &results);

  // One traced pass per operator at the top threadcnt, outside the timed
  // loops: the span tree (rows, morsel counts) is embedded in the artifact
  // next to the timings.
  trace::TraceSink sink;
  ExecContext traced = Ctx(8);
  traced.trace = &sink;
  COBRA_CHECK(floats.SelectRange(0.25, 0.75, traced).ok());
  COBRA_CHECK(floats.Sum(traced).ok());
  COBRA_CHECK(floats.Max(traced).ok());
  COBRA_CHECK(Join(probe, build, traced).ok());
  {
    std::vector<size_t> reps;
    Bat out = Group(groups, &reps, traced);
    COBRA_CHECK(!out.empty());
  }
  COBRA_CHECK(trace::ValidateJson(sink.ToJson()).ok());

  WriteJson(results, sink.ToJson(), "BENCH_kernel.json");
  return 0;
}

}  // namespace
}  // namespace cobra::kernel

int main() { return cobra::kernel::Main(); }
