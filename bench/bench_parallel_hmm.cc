// Reproduces the paper's Fig. 3/4: the HMM extension evaluates six models
// in parallel through the kernel's parallel execution operator, speeding up
// the costly inference operation compared to serial evaluation at the
// application level. google-benchmark measures serial vs parallel
// evaluation of the same six-model bank (named after the six stroke models
// of the paper's MIL listing).

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "hmm/hmm.h"
#include "hmm/parallel_eval.h"

namespace {

using cobra::Rng;
using cobra::hmm::Hmm;
using cobra::hmm::ParallelEvaluator;

constexpr int kNumStates = 8;
constexpr int kNumSymbols = 16;
constexpr size_t kSequenceLength = 4000;

const ParallelEvaluator& Evaluator() {
  static ParallelEvaluator* const kEvaluator = [] {
    auto* evaluator = new ParallelEvaluator();
    Rng rng(4242);
    for (const char* name : {"Service", "Forehand", "Smash", "Backhand",
                             "VolleyBackhand", "VolleyForehand"}) {
      Hmm hmm(kNumStates, kNumSymbols);
      hmm.Randomize(rng);
      evaluator->AddModel(name, std::move(hmm));
    }
    return evaluator;
  }();
  return *kEvaluator;
}

const std::vector<int>& Observations() {
  static const std::vector<int>* const kObs = [] {
    Rng rng(99);
    auto* obs = new std::vector<int>(kSequenceLength);
    for (auto& o : *obs) o = static_cast<int>(rng.UniformInt(kNumSymbols));
    return obs;
  }();
  return *kObs;
}

void BM_SerialEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    auto scores = Evaluator().EvaluateAll(Observations(), /*parallel=*/false);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_SerialEvaluation);

void BM_ParallelEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    auto scores = Evaluator().EvaluateAll(Observations(), /*parallel=*/true);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_ParallelEvaluation);

void BM_Classify(benchmark::State& state) {
  for (auto _ : state) {
    auto label = Evaluator().Classify(Observations());
    benchmark::DoNotOptimize(label);
  }
}
BENCHMARK(BM_Classify);

}  // namespace

BENCHMARK_MAIN();
